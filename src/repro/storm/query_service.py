"""Query service: the client entry point of the STORM runtime.

"The query service is the entry point for clients to submit queries to the
database middleware" (paper Section 2.3).  ``submit`` runs the full
pipeline: plan (generated or interpreted index function) -> per-node
parallel extraction (data source + filtering services) -> partition
generation -> data mover -> merged result, with per-node operation counts
and a deterministic simulated execution time from the cost model.

Extraction is failure-aware: each node's work is retried with exponential
backoff (``ExecOptions.retries`` / ``retry_backoff``), an attempt that
exceeds ``node_timeout`` is abandoned as hung, and a node that is still
failing after every retry either fails the query with a typed
:class:`~repro.errors.NodeFailureError` or — under ``allow_partial`` —
is dropped from the result, which comes back flagged ``degraded`` with
the node listed in ``failed_nodes``.  Every retry, timeout, and
degradation is recorded through the tracer (spans ``retry`` and
``node_failure``; counters ``retries.attempted``, ``nodes.failed``,
``faults.injected``).
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Union

from ..core.afc import AlignedFileChunkSet
from ..core.options import ExecOptions, resolve_workers
from ..core.planner import CompiledDataset
from ..core.stats import IOStats
from ..core.table import VirtualTable, concat_tables
from ..errors import (
    ExtractionError,
    InjectedFault,
    NodeFailureError,
    NodeTimeoutError,
    StormError,
)
from ..obs.tracer import TraceContext, Tracer
from ..sched.state import record_abandoned_thread
from ..sql.ast import Query
from ..sql.functions import FunctionRegistry
from .cluster import VirtualCluster
from .cost import CostModel, STORM_COST
from .data_source import DataSourceService
from .filtering import FilteringService
from .indexing_service import IndexingService
from .mover import DataMoverService, Delivery
from .partition import Partitioner, RoundRobinPartitioner
from .transport import LocalTransport, Transport

#: Failures worth retrying: real or injected I/O errors and per-attempt
#: timeouts.  Programming errors (planning bugs, bad SQL) propagate.
_RETRYABLE = (ExtractionError, NodeTimeoutError, OSError)

#: Pseudo-node name under which result-transfer failures are reported.
TRANSFER_NODE = "_transfer"

#: Pseudo-node name under which cache-served work is accounted: a hit
#: produces no per-node extraction stats, but its bookkeeping
#: (``result_cache_hits`` / ``subsumption_hits`` / ``rows_refiltered`` /
#: ``cache_saved_bytes``) still needs a home in ``per_node_stats``.
CACHE_NODE = "_cache"

#: Pseudo-node name for aggregate queries answered entirely from chunk
#: summaries / plan metadata (zero data-chunk reads).
SUMMARY_NODE = "_summary"

#: Pseudo-node name for coordinator-side aggregation work (the
#: ``agg_pushdown=False`` ablation folds all shipped rows here).
COORDINATOR_NODE = "_coordinator"


@dataclass
class QueryResult:
    """Everything a submitted query produced."""

    table: VirtualTable
    deliveries: List[Delivery]
    per_node_stats: Dict[str, IOStats]
    simulated_seconds: float
    wall_seconds: float
    afc_count: int
    #: The span trace of this execution, when submitted with tracing on
    #: (``ExecOptions(trace=...)``); None otherwise.
    trace: Optional[Tracer] = None
    #: True when ``allow_partial`` dropped failing work: the table holds
    #: only the rows of the surviving nodes.
    degraded: bool = False
    #: Nodes whose extraction (or ``"_transfer"`` whose delivery) kept
    #: failing after every retry; empty for a full result.
    failed_nodes: List[str] = field(default_factory=list)

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @cached_property
    def total_stats(self) -> IOStats:
        """Merged per-node counters, computed once and cached.

        ``summary()`` and the benchmarks read this in loops; per-node
        stats are fully written before the result is constructed, so the
        merge is safe to memoise.
        """
        total = IOStats()
        for stats in self.per_node_stats.values():
            total.merge(stats)
        return total

    def summary(self) -> str:
        stats = self.total_stats
        text = (
            f"{self.num_rows} rows, {self.afc_count} AFCs, "
            f"{stats.bytes_read / 1e6:.1f} MB read, "
            f"{stats.bytes_sent / 1e6:.2f} MB sent, "
            f"sim {self.simulated_seconds:.2f}s, wall {self.wall_seconds:.3f}s"
        )
        if self.degraded:
            text += f" [DEGRADED: lost {', '.join(self.failed_nodes)}]"
        return text


def _merge_legacy_kwargs(
    options: Optional[ExecOptions],
    **legacy,
) -> ExecOptions:
    """Fold deprecated per-call keywords into an :class:`ExecOptions`.

    Each keyword that is not None overrides the matching options field and
    emits a DeprecationWarning naming the replacement.
    """
    opts = options if options is not None else ExecOptions()
    overrides = {k: v for k, v in legacy.items() if v is not None}
    if overrides:
        names = ", ".join(f"{name}=..." for name in sorted(overrides))
        warnings.warn(
            f"passing {names} to QueryService.submit is deprecated; "
            f"use submit(sql, ExecOptions({names})) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        opts = opts.replace(**overrides)
    return opts


class QueryService:
    """Front door of the STORM middleware for one dataset on one cluster."""

    def __init__(
        self,
        dataset: CompiledDataset,
        cluster: Optional[VirtualCluster] = None,
        functions: Optional[FunctionRegistry] = None,
        cost_model: CostModel = STORM_COST,
        max_workers: Optional[int] = None,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        handle_cache: int = 64,
        fault_injector=None,
        transport: Optional[Transport] = None,
        max_sacrificial_threads: int = 16,
    ):
        self.dataset = dataset
        self.cluster = cluster
        self.cost_model = cost_model
        #: Built lazily: hand-written planners (duck-typed datasets with
        #: only a .plan()) can run through the same service pipeline.
        self._indexing: Optional[IndexingService] = None
        self.filtering = FilteringService(functions)
        #: Optional repro.faults.FaultInjector: wraps every node mount
        #: and gates mover deliveries (chaos testing).
        self.fault_injector = fault_injector
        self.mover = DataMoverService(injector=fault_injector)
        #: How extraction plans reach data-source services: in-process
        #: over a VirtualCluster by default, or any Transport (e.g. the
        #: TCP transport of repro.net) reaching real node processes.
        if transport is None:
            if cluster is None:
                raise StormError(
                    "QueryService needs a cluster or a transport"
                )
            transport = LocalTransport(
                cluster,
                self.filtering,
                segment_cache_bytes=segment_cache_bytes,
                handle_cache=handle_cache,
                fault_injector=fault_injector,
            )
        self.transport = transport
        self.max_workers = max_workers
        self.segment_cache_bytes = segment_cache_bytes
        self.handle_cache = handle_cache
        #: Result/plan caches shared by every node and submitting thread,
        #: created lazily by the first submit whose options enable them.
        self._query_cache = None
        self._cache_unsupported = False
        self._cache_lock = threading.Lock()
        #: Long-lived node fan-out pool shared by every submit (built
        #: lazily by the first parallel extraction; threads spawn on
        #: demand, so an idle service costs nothing).  Replaces the old
        #: per-submit ThreadPoolExecutor churn.
        self._node_pool: Optional[ThreadPoolExecutor] = None
        self._node_pool_lock = threading.Lock()
        #: Cap on concurrent sacrificial timeout threads: a hung attempt
        #: is abandoned to finish on its own, but only this many may be
        #: in flight at once — a flaky node under retries can no longer
        #: grow threads without limit.
        self.max_sacrificial_threads = max_sacrificial_threads
        self._sacrificial_slots = threading.BoundedSemaphore(
            max_sacrificial_threads
        )

    @property
    def indexing(self) -> IndexingService:
        if self._indexing is None:
            self._indexing = IndexingService(self.dataset)
        return self._indexing

    @property
    def sources(self) -> Dict[str, DataSourceService]:
        """The local transport's per-node service map (same dict object).

        Remote transports have no in-process services; the map is empty.
        Kept as a live view for tests and tooling that reach into it.
        """
        return getattr(self.transport, "sources", {})

    def _source(self, node: str) -> DataSourceService:
        """Deprecated internal accessor; kept for existing callers."""
        return self.transport.source(node)

    def _cache_for(self, opts: ExecOptions):
        """The shared QueryCache, or None when this query runs uncached."""
        if opts.cache_mode == "off" or self._cache_unsupported:
            return None
        with self._cache_lock:
            if self._query_cache is None:
                from ..cache import QueryCache

                self._query_cache = QueryCache.for_dataset(
                    self.dataset,
                    opts.result_cache_bytes,
                    opts.plan_cache_entries,
                )
                if self._query_cache is None:
                    # Duck-typed dataset without descriptor/needed_columns:
                    # caching cannot key its queries; stay off silently.
                    self._cache_unsupported = True
            else:
                self._query_cache.configure(
                    opts.result_cache_bytes, opts.plan_cache_entries
                )
            return self._query_cache

    def _pool(self, opts: ExecOptions) -> ThreadPoolExecutor:
        """The shared node fan-out pool, built on first parallel use.

        Sized once, by ``max_workers`` or the first submit's
        ``scheduler_workers`` auto-resolution; later submits reuse the
        same threads whatever their node count.
        """
        with self._node_pool_lock:
            if self._node_pool is None:
                size = self.max_workers or resolve_workers(
                    opts.scheduler_workers
                )
                self._node_pool = ThreadPoolExecutor(
                    max_workers=size, thread_name_prefix="storm-node"
                )
            return self._node_pool

    def drop_caches(self) -> None:
        """Cold-cache mode: benchmarks call this between measured queries.

        Clears the per-node segment/handle caches *and* the shared
        result/plan caches (counters included) — after this, every
        query's I/O starts from a cold disk and a cold cache.
        """
        self.transport.drop_caches()
        with self._cache_lock:
            cache = self._query_cache
        if cache is not None:
            cache.drop()

    def cache_stats(self):
        """Result/plan cache counters, or None before any cached submit."""
        with self._cache_lock:
            cache = self._query_cache
        return cache.stats() if cache is not None else None

    # -- execution ------------------------------------------------------------

    def submit(
        self,
        sql: Union[Query, str],
        options: Optional[ExecOptions] = None,
        *,
        num_clients: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
        remote: Optional[bool] = None,
        parallel: Optional[bool] = None,
    ) -> QueryResult:
        """Run a query end-to-end.

        Execution knobs come from ``options`` (an :class:`ExecOptions`).
        ``remote=False`` models a client co-located with the server (no
        network transfer is charged); the paper's Query 5 uses
        ``remote=True``.  Failure handling is governed by the options'
        ``retries`` / ``retry_backoff`` / ``node_timeout`` /
        ``allow_partial`` fields.  The per-method keywords
        (``num_clients``, ``partitioner``, ``remote``, ``parallel``) are
        deprecated shims that override the corresponding ``options``
        fields.
        """
        opts = _merge_legacy_kwargs(
            options,
            num_clients=num_clients,
            partitioner=partitioner,
            remote=remote,
            parallel=parallel,
        )
        run_state = opts.run_state
        if run_state is not None:
            # A query cancelled while queued must not start executing.
            run_state.checkpoint()
        tracer = opts.tracer()
        cache = self._cache_for(opts)
        resolved: Union[Query, str] = sql
        if cache is not None:
            # Resolve once: the same Query object feeds diagnostics,
            # keying, and planning (no repeated parse/validate).
            resolved = self.dataset.resolve_query(sql)
        self._run_diagnostics(resolved, opts, tracer)
        injector = self.fault_injector
        faults_before = injector.injected if injector is not None else 0
        attempts_allowed = max(0, opts.retries) + 1
        start = time.perf_counter()

        with tracer.span("query", sql=str(resolved)[:200]) as query_span:
            ctx = TraceContext(tracer, query_span)
            served = key = None
            if cache is not None:
                key, needed = cache.key_and_needed(resolved)
                cache_io = IOStats()
                served = cache.serve(
                    key, resolved, needed, self.filtering, cache_io,
                    tracer, opts.cache_mode,
                    vectorize=opts.vectorize == "on",
                )
            if served is not None:
                # Cache hit: no planning, no extraction, no node I/O.
                table = served.table
                per_node_stats: Dict[str, IOStats] = {CACHE_NODE: cache_io}
                failed_nodes: List[str] = []
                afc_count = served.afc_count
            else:
                if cache is not None:
                    from ..cache import project, widen_plan

                    plan = cache.plan_for(resolved, key, tracer)
                    # Emit every needed column (same reads, same filter)
                    # so the cached table can answer narrower queries
                    # filtering on WHERE-only attributes; callers get
                    # the projected SELECT list as always.  Aggregate
                    # plans are never widened: their cached value is the
                    # final labelled table, not a base-row superset.
                    exec_plan = (
                        plan if plan.aggregate is not None else widen_plan(plan)
                    )
                elif tracer.enabled and getattr(
                    self.dataset, "supports_tracing", False
                ):
                    plan = exec_plan = self.dataset.plan(resolved, tracer=tracer)
                else:
                    plan = exec_plan = self.dataset.plan(resolved)
                if getattr(exec_plan, "aggregate", None) is not None:
                    table, per_node_stats, failed_nodes = self._run_aggregate(
                        exec_plan, opts, tracer, ctx, attempts_allowed
                    )
                else:
                    table, per_node_stats, failed_nodes = self._extract_nodes(
                        exec_plan, opts, tracer, ctx, attempts_allowed
                    )
                afc_count = len(plan.afcs)
                if cache is not None:
                    if not failed_nodes and (
                        injector is None or injector.injected == faults_before
                    ):
                        # Only complete, healthy results enter the cache:
                        # degraded/partial tables and anything produced
                        # while faults fired would replay the damage
                        # forever.
                        cache.store(
                            key,
                            table,
                            sum(s.bytes_read for s in per_node_stats.values()),
                            afc_count,
                            tracer,
                        )
                    if plan.aggregate is None:
                        table = project(table, plan.output)

            transfer_stats = IOStats()
            deliveries: List[Delivery] = []
            messages = 0
            if opts.remote:
                deliveries, transfer_stats, transfer_exc = self._move_resilient(
                    table, opts, ctx, tracer, attempts_allowed
                )
                if transfer_exc is not None:
                    if not opts.allow_partial:
                        raise transfer_exc
                    failed_nodes.append(TRANSFER_NODE)
                messages = sum(d.messages for d in deliveries)

            simulated = self.cost_model.makespan(
                per_node_stats, transfer_stats.bytes_sent, messages
            )
            if opts.remote:
                # Local queries never ran the mover; giving them an
                # all-zero "_transfer" pseudo-node entry used to trip up
                # consumers iterating per_node_stats as "the nodes".
                per_node_stats.setdefault(TRANSFER_NODE, IOStats()).merge(
                    transfer_stats
                )
            query_span.tag(
                rows=table.num_rows,
                afcs=afc_count,
                simulated_seconds=round(simulated, 6),
            )
            if failed_nodes:
                query_span.tag(degraded=True, failed_nodes=list(failed_nodes))
            if tracer.enabled:
                for node, stats in per_node_stats.items():
                    tracer.metrics.record_stats(stats, prefix=f"io.{node}.")
                if injector is not None:
                    tracer.metrics.record(
                        "faults.injected", injector.injected - faults_before
                    )

        wall = time.perf_counter() - start
        return QueryResult(
            table=table,
            deliveries=deliveries,
            per_node_stats=per_node_stats,
            simulated_seconds=simulated,
            wall_seconds=wall,
            afc_count=afc_count,
            trace=tracer if tracer.enabled else None,
            degraded=bool(failed_nodes),
            failed_nodes=failed_nodes,
        )

    def _run_aggregate(
        self,
        exec_plan,
        opts: ExecOptions,
        tracer,
        ctx: TraceContext,
        attempts_allowed: int,
    ):
        """Execute an aggregate plan; returns ``(table, stats, failed)``.

        Three strategies, cheapest first:

        1. **Summary fast path** — a predicate-free ungrouped
           COUNT/MIN/MAX whose bounds are fully covered by plan metadata
           and chunk summaries is answered with zero data-chunk reads.
        2. **Pushdown** (``opts.agg_pushdown``, the default) — nodes
           return partial state frames; the coordinator merges and
           finalises them.  A node dropped under ``allow_partial`` drops
           its partial sums with it, so the result is marked degraded
           exactly like a row query — never a silent under-count.
        3. **Ablation** (``agg_pushdown=False``) — nodes ship full
           filtered rows and the coordinator aggregates them; the
           measurable difference is bytes moved, never the result.
        """
        from ..core import aggregate as agg

        spec = exec_plan.aggregate
        if opts.agg_pushdown:
            answer = agg.summary_answer(
                exec_plan, getattr(self.dataset, "summaries", None)
            )
            if answer is not None:
                stats = IOStats()
                stats.afcs_pruned += len(exec_plan.afcs)
                stats.groups_emitted += answer.num_rows
                if tracer.enabled:
                    tracer.metrics.record("agg.summary_answers")
                    tracer.event(
                        "summary_answer", afcs=len(exec_plan.afcs)
                    )
                return answer, {SUMMARY_NODE: stats}, []
            state, per_node_stats, failed_nodes = self._extract_nodes(
                exec_plan, opts, tracer, ctx, attempts_allowed
            )
            merged = agg.merge_partials(spec, [state], exec_plan.dtypes)
            table = agg.finalize(spec, merged, exec_plan.dtypes)
            return table, per_node_stats, failed_nodes
        # Ablation: strip the aggregate so nodes run the plain row path,
        # then fold everything at the coordinator (priced under its own
        # pseudo-node so the CPU shows up in the makespan).  A pure
        # COUNT(*) plan has no base output columns; client-side counting
        # has to ship *something* per row, so fall back to the WHERE
        # inputs or the first schema attribute — that honesty is exactly
        # what the pushdown ablation measures.
        from dataclasses import replace as dc_replace

        needed = list(exec_plan.needed)
        output = list(exec_plan.output)
        if not output:
            output = needed or (
                [next(iter(exec_plan.dtypes))] if exec_plan.dtypes else []
            )
            needed = list(dict.fromkeys(needed + output))
        row_plan = dc_replace(
            exec_plan, aggregate=None, needed=needed, output=output
        )
        rows, per_node_stats, failed_nodes = self._extract_nodes(
            row_plan, opts, tracer, ctx, attempts_allowed
        )
        coord = per_node_stats.setdefault(COORDINATOR_NODE, IOStats())
        coord.rows_aggregated += rows.num_rows
        table = agg.aggregate_rows(spec, rows, exec_plan.dtypes)
        coord.groups_emitted += table.num_rows
        return table, per_node_stats, failed_nodes

    def _extract_nodes(
        self,
        plan,
        opts: ExecOptions,
        tracer,
        ctx: TraceContext,
        attempts_allowed: int,
    ):
        """Failure-aware parallel extraction of a plan across its nodes.

        Returns ``(table, per_node_stats, failed_nodes)``; raises
        :class:`~repro.errors.NodeFailureError` for the first exhausted
        node unless ``opts.allow_partial``.
        """
        by_node: Dict[str, List[AlignedFileChunkSet]] = {}
        for afc in plan.afcs:
            node = afc.chunks[0].node if afc.chunks else "local"
            by_node.setdefault(node, []).append(afc)

        per_node_stats: Dict[str, IOStats] = {
            node: IOStats() for node in by_node
        }
        #: node -> terminal failure; distinct keys per worker thread.
        failures: Dict[str, NodeFailureError] = {}

        run_state = opts.run_state

        def attempt_node(node: str, attempt_stats: IOStats) -> VirtualTable:
            """One extraction attempt, bounded by node_timeout."""
            if opts.node_timeout is None:
                return self.transport.execute_node(
                    node, plan, by_node[node], attempt_stats, tracer, opts
                )
            # A hung attempt cannot be interrupted from outside, so it
            # runs on a sacrificial thread we abandon on timeout (it
            # ends when its blocking read does, still writing into an
            # attempt_stats that is discarded, never merged).  The
            # semaphore bounds how many abandoned threads can be in
            # flight at once: a slot is held from spawn until the
            # thread actually finishes, so a flaky node under retries
            # blocks on a slot instead of growing threads forever.
            if not self._sacrificial_slots.acquire(
                timeout=opts.node_timeout
            ):
                tracer.metrics.record("sched.sacrificial_saturated")
                raise NodeTimeoutError(node, opts.node_timeout) from None
            done = threading.Event()
            box: Dict[str, object] = {}

            def work() -> None:
                try:
                    box["result"] = self.transport.execute_node(
                        node, plan, by_node[node], attempt_stats, tracer, opts
                    )
                except BaseException as exc:  # noqa: BLE001 - relayed below
                    box["error"] = exc
                finally:
                    self._sacrificial_slots.release()
                    done.set()

            thread = threading.Thread(
                target=work, name=f"extract-{node}", daemon=True
            )
            thread.start()
            deadline = time.monotonic() + opts.node_timeout
            # Poll in short slices when a run state is attached so a
            # cancel/quota trip abandons the in-flight attempt through
            # this same machinery instead of waiting out the timeout.
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._abandon_thread(tracer)
                    raise NodeTimeoutError(node, opts.node_timeout) from None
                slice_ = remaining if run_state is None else min(
                    remaining, 0.05
                )
                if done.wait(slice_):
                    break
                if run_state is not None and run_state.should_stop:
                    self._abandon_thread(tracer)
                    run_state.checkpoint()
            error = box.get("error")
            if error is not None:
                raise error  # type: ignore[misc]
            return box["result"]  # type: ignore[return-value]

        def run_node(node: str) -> VirtualTable:
            # Worker threads have an empty span stack; parent the
            # per-node span under the query root via the context.
            with ctx.span(
                "extract", node=node, afcs=len(by_node[node])
            ) as span:
                node_ctx = ctx.child(span)
                last_exc: Optional[Exception] = None
                for attempt in range(attempts_allowed):
                    if run_state is not None:
                        run_state.checkpoint()
                    attempt_stats = IOStats()
                    try:
                        if attempt == 0:
                            partial = attempt_node(node, attempt_stats)
                        else:
                            backoff = opts.retry_backoff * (2 ** (attempt - 1))
                            with node_ctx.span(
                                "retry",
                                node=node,
                                attempt=attempt,
                                backoff=round(backoff, 6),
                                error=f"{type(last_exc).__name__}: {last_exc}",
                            ):
                                tracer.metrics.record("retries.attempted")
                                if backoff > 0:
                                    time.sleep(backoff)
                                partial = attempt_node(node, attempt_stats)
                    except _RETRYABLE as exc:
                        # A timed-out attempt was abandoned, not
                        # finished: its sacrificial thread may still
                        # be mutating attempt_stats, so merging it
                        # here would both race and double-count the
                        # partial work on top of the retry's counts.
                        if not isinstance(exc, NodeTimeoutError):
                            per_node_stats[node].merge(attempt_stats)
                        last_exc = exc
                        continue
                    per_node_stats[node].merge(attempt_stats)
                    if run_state is not None and not getattr(
                        self.transport, "cooperative_quotas", False
                    ):
                        # Remote nodes never see the run state (it does
                        # not cross the wire), so quotas are charged
                        # here, per node partial, at the coordinator.
                        run_state.charge(
                            rows=partial.num_rows,
                            nbytes=attempt_stats.bytes_read,
                        )
                    span.tag(
                        rows=partial.num_rows,
                        bytes_read=per_node_stats[node].bytes_read,
                        attempts=attempt + 1,
                    )
                    return partial
                tracer.metrics.record("nodes.failed")
                node_ctx.event(
                    "node_failure",
                    node=node,
                    attempts=attempts_allowed,
                    error=f"{type(last_exc).__name__}: {last_exc}",
                )
                raise NodeFailureError(node, attempts_allowed, last_exc)

        def guarded(node: str) -> Optional[VirtualTable]:
            try:
                return run_node(node)
            except NodeFailureError as exc:
                failures[node] = exc
                return None

        nodes = list(by_node)
        if opts.parallel and len(nodes) > 1:
            maybe_partials = list(self._pool(opts).map(guarded, nodes))
        else:
            maybe_partials = [guarded(node) for node in nodes]

        if run_state is not None:
            # A cancel or quota trip that raced the last node's
            # completion must win *before* any merge: a degraded or
            # partial table must never be half-assembled from work that
            # finished while the teardown was in flight.
            run_state.checkpoint()

        failed_nodes = [node for node in nodes if node in failures]
        if failed_nodes and not opts.allow_partial:
            raise failures[failed_nodes[0]]
        partials = [p for p in maybe_partials if p is not None]

        if partials:
            table = concat_tables(partials)
        elif getattr(plan, "aggregate", None) is not None:
            # Aggregate plans return state frames, not base rows.
            table = plan.aggregate.empty_state(plan.dtypes)
        else:
            import numpy as np

            table = VirtualTable(
                {
                    n: np.empty(0, dtype=plan.dtypes.get(n, np.float64))
                    for n in plan.output
                },
                order=plan.output,
            )
        return table, per_node_stats, failed_nodes

    def _run_diagnostics(
        self,
        sql: Union[Query, str],
        opts: ExecOptions,
        tracer,
    ) -> None:
        """Static analysis at submit time.

        With tracing on, descriptor and query findings become ``diag``
        events plus a ``diag.warnings`` counter.  Under
        ``ExecOptions(strict=True)`` any error *or warning* refuses the
        query with a :class:`~repro.errors.QueryValidationError` — the
        strict mode escalation.  Datasets without a descriptor
        (hand-written planners) only get query analysis, and only when a
        descriptor is reachable.
        """
        if not (opts.strict or tracer.enabled):
            return
        from ..diag.options import analyze_options

        findings = []
        collector = getattr(self.dataset, "diagnostics", None)
        if collector is not None:
            findings.extend(collector)
        descriptor = getattr(self.dataset, "descriptor", None)
        if descriptor is not None:
            from ..diag.query import analyze_query

            findings.extend(
                analyze_query(descriptor, sql, self.filtering.functions)
            )
        findings.extend(analyze_options(opts))
        if tracer.enabled:
            for diag in findings:
                tracer.event(
                    "diag",
                    code=diag.code,
                    severity=str(diag.severity),
                    message=diag.message,
                )
                if str(diag.severity) == "warning":
                    tracer.metrics.record("diag.warnings")
        if opts.strict:
            blocking = [
                d for d in findings if str(d.severity) in ("error", "warning")
            ]
            if blocking:
                from ..errors import QueryValidationError

                details = "; ".join(d.format(show_source=False) for d in blocking)
                raise QueryValidationError(
                    f"strict mode: {len(blocking)} static-analysis finding(s) "
                    f"block execution: {details}"
                )

    def _move_resilient(
        self,
        table: VirtualTable,
        opts: ExecOptions,
        ctx: TraceContext,
        tracer,
        attempts_allowed: int,
    ):
        """Run the data mover with the same retry policy as extraction.

        Returns ``(deliveries, transfer_stats, failure)``; on exhausted
        retries the failure is a :class:`NodeFailureError` for the
        pseudo-node ``"_transfer"`` and the deliveries are empty.
        """
        partitioner = opts.partitioner or RoundRobinPartitioner()
        last_exc: Optional[Exception] = None
        for attempt in range(attempts_allowed):
            transfer_stats = IOStats()
            try:
                if attempt == 0:
                    deliveries = self.mover.move(
                        table, partitioner, opts.num_clients,
                        transfer_stats, tracer,
                    )
                else:
                    backoff = opts.retry_backoff * (2 ** (attempt - 1))
                    with ctx.span(
                        "retry",
                        node=TRANSFER_NODE,
                        attempt=attempt,
                        backoff=round(backoff, 6),
                        error=f"{type(last_exc).__name__}: {last_exc}",
                    ):
                        tracer.metrics.record("retries.attempted")
                        if backoff > 0:
                            time.sleep(backoff)
                        deliveries = self.mover.move(
                            table, partitioner, opts.num_clients,
                            transfer_stats, tracer,
                        )
            except InjectedFault as exc:
                last_exc = exc
                continue
            return deliveries, transfer_stats, None
        tracer.metrics.record("nodes.failed")
        ctx.event(
            "node_failure",
            node=TRANSFER_NODE,
            attempts=attempts_allowed,
            error=f"{type(last_exc).__name__}: {last_exc}",
        )
        return [], IOStats(), NodeFailureError(
            TRANSFER_NODE, attempts_allowed, last_exc
        )

    def _abandon_thread(self, tracer) -> None:
        """Account one sacrificial thread left to die on its own."""
        record_abandoned_thread()
        tracer.metrics.record("sched.threads_abandoned")

    def close(self) -> None:
        with self._node_pool_lock:
            pool, self._node_pool = self._node_pool, None
        if pool is not None:
            # wait=False: a node hung mid-extraction must not hang close.
            pool.shutdown(wait=False)
        self.transport.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
