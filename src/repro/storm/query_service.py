"""Query service: the client entry point of the STORM runtime.

"The query service is the entry point for clients to submit queries to the
database middleware" (paper Section 2.3).  ``submit`` runs the full
pipeline: plan (generated or interpreted index function) -> per-node
parallel extraction (data source + filtering services) -> partition
generation -> data mover -> merged result, with per-node operation counts
and a deterministic simulated execution time from the cost model.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..core.afc import AlignedFileChunkSet, ExtractionPlan
from ..core.planner import CompiledDataset
from ..core.stats import IOStats
from ..core.table import VirtualTable, concat_tables
from ..sql.ast import Query
from ..sql.functions import FunctionRegistry
from .cluster import VirtualCluster
from .cost import CostModel, STORM_COST
from .data_source import DataSourceService
from .filtering import FilteringService
from .indexing_service import IndexingService
from .mover import DataMoverService, Delivery
from .partition import Partitioner, RoundRobinPartitioner


@dataclass
class QueryResult:
    """Everything a submitted query produced."""

    table: VirtualTable
    deliveries: List[Delivery]
    per_node_stats: Dict[str, IOStats]
    simulated_seconds: float
    wall_seconds: float
    afc_count: int

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def total_stats(self) -> IOStats:
        total = IOStats()
        for stats in self.per_node_stats.values():
            total.merge(stats)
        return total

    def summary(self) -> str:
        stats = self.total_stats
        return (
            f"{self.num_rows} rows, {self.afc_count} AFCs, "
            f"{stats.bytes_read / 1e6:.1f} MB read, "
            f"{stats.bytes_sent / 1e6:.2f} MB sent, "
            f"sim {self.simulated_seconds:.2f}s, wall {self.wall_seconds:.3f}s"
        )


class QueryService:
    """Front door of the STORM middleware for one dataset on one cluster."""

    def __init__(
        self,
        dataset: CompiledDataset,
        cluster: VirtualCluster,
        functions: Optional[FunctionRegistry] = None,
        cost_model: CostModel = STORM_COST,
        max_workers: Optional[int] = None,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        handle_cache: int = 64,
    ):
        self.dataset = dataset
        self.cluster = cluster
        self.cost_model = cost_model
        #: Built lazily: hand-written planners (duck-typed datasets with
        #: only a .plan()) can run through the same service pipeline.
        self._indexing: Optional[IndexingService] = None
        self.filtering = FilteringService(functions)
        self.mover = DataMoverService()
        self.sources: Dict[str, DataSourceService] = {}
        self.max_workers = max_workers
        self.segment_cache_bytes = segment_cache_bytes
        self.handle_cache = handle_cache

    @property
    def indexing(self) -> IndexingService:
        if self._indexing is None:
            self._indexing = IndexingService(self.dataset)
        return self._indexing

    def _source(self, node: str) -> DataSourceService:
        if node not in self.sources:
            self.sources[node] = DataSourceService(
                node,
                self.cluster.mount(),
                self.filtering,
                segment_cache_bytes=self.segment_cache_bytes,
                handle_cache=self.handle_cache,
            )
        return self.sources[node]

    def drop_caches(self) -> None:
        """Cold-cache mode: benchmarks call this between measured queries."""
        for source in self.sources.values():
            source.drop_caches()

    # -- execution ------------------------------------------------------------

    def submit(
        self,
        sql: Union[Query, str],
        num_clients: int = 1,
        partitioner: Optional[Partitioner] = None,
        remote: bool = True,
        parallel: bool = True,
    ) -> QueryResult:
        """Run a query end-to-end.

        ``remote=False`` models a client co-located with the server (no
        network transfer is charged); the paper's Query 5 uses
        ``remote=True``.
        """
        start = time.perf_counter()
        plan = self.dataset.plan(sql)

        by_node: Dict[str, List[AlignedFileChunkSet]] = {}
        for afc in plan.afcs:
            node = afc.chunks[0].node if afc.chunks else "local"
            by_node.setdefault(node, []).append(afc)

        per_node_stats: Dict[str, IOStats] = {
            node: IOStats() for node in by_node
        }

        def run_node(node: str) -> VirtualTable:
            return self._source(node).execute(
                plan, by_node[node], per_node_stats[node]
            )

        nodes = list(by_node)
        if parallel and len(nodes) > 1:
            with ThreadPoolExecutor(
                max_workers=self.max_workers or len(nodes)
            ) as pool:
                partials = list(pool.map(run_node, nodes))
        else:
            partials = [run_node(node) for node in nodes]

        if partials:
            table = concat_tables(partials)
        else:
            import numpy as np

            table = VirtualTable(
                {
                    n: np.empty(0, dtype=plan.dtypes.get(n, np.float64))
                    for n in plan.output
                },
                order=plan.output,
            )

        transfer_stats = IOStats()
        if remote:
            deliveries = self.mover.move(
                table,
                partitioner or RoundRobinPartitioner(),
                num_clients,
                transfer_stats,
            )
            messages = sum(d.messages for d in deliveries)
        else:
            deliveries = []
            messages = 0

        simulated = self.cost_model.makespan(
            per_node_stats, transfer_stats.bytes_sent, messages
        )
        wall = time.perf_counter() - start
        per_node_stats.setdefault("_transfer", IOStats()).merge(transfer_stats)
        return QueryResult(
            table=table,
            deliveries=deliveries,
            per_node_stats=per_node_stats,
            simulated_seconds=simulated,
            wall_seconds=wall,
            afc_count=len(plan.afcs),
        )

    def close(self) -> None:
        for source in self.sources.values():
            source.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
