"""Transports: how the query service reaches its data-source services.

The paper's STORM runtime separates the query service (coordinator) from
the per-node data source services; *where* those services run is a
transport decision.  :class:`Transport` is the seam: the query service
plans, retries, times out, degrades, and caches exactly the same whether
``execute_node`` calls a :class:`~repro.storm.data_source.
DataSourceService` in this process (:class:`LocalTransport`, the
``local://`` path — the original in-process simulation) or ships the
plan over a socket to a node server process
(:class:`repro.net.client.TcpTransport`, the ``tcp://`` path).

``LocalTransport`` owns what used to live directly on ``QueryService``:
the lazily-built per-node service map and its construction lock.  The
service keeps delegating ``sources`` / ``_source`` so existing callers
and tests see the same objects.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from ..core.afc import AlignedFileChunkSet, ExtractionPlan
from ..core.stats import IOStats
from ..core.table import VirtualTable
from ..obs.tracer import NULL_TRACER
from .cluster import VirtualCluster
from .data_source import DataSourceService
from .filtering import FilteringService


class Transport:
    """Reaches data-source services for a fixed set of nodes."""

    #: URL scheme this transport answers to (for reprs and docs).
    scheme = "abstract"

    #: True when ``execute_node`` enforces ``ExecOptions.run_state``
    #: quota/cancel boundaries itself (per AFC); False makes the query
    #: service charge quotas at the coordinator, per node partial —
    #: the run state never crosses a process boundary.
    cooperative_quotas = False

    def execute_node(
        self,
        node: str,
        plan: ExtractionPlan,
        afcs: List[AlignedFileChunkSet],
        stats: IOStats,
        tracer=NULL_TRACER,
        options=None,
    ) -> VirtualTable:
        """Run one node's share of a plan; returns its partial table.

        Must be thread-safe: the query service calls it concurrently
        from one worker thread per node (plus retry attempts).
        """
        raise NotImplementedError

    def drop_caches(self) -> None:
        """Forget per-node handle/segment caches (cold-run mode)."""

    def close(self) -> None:
        """Release connections/handles; the transport is done."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalTransport(Transport):
    """In-process data-source services over a directory-backed cluster."""

    scheme = "local"
    cooperative_quotas = True

    def __init__(
        self,
        cluster: VirtualCluster,
        filtering: FilteringService,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        handle_cache: int = 64,
        fault_injector=None,
    ):
        self.cluster = cluster
        self.filtering = filtering
        self.segment_cache_bytes = segment_cache_bytes
        self.handle_cache = handle_cache
        self.fault_injector = fault_injector
        self.sources: Dict[str, DataSourceService] = {}
        #: Concurrent submits race to build per-node services; without
        #: this lock two threads can construct two DataSourceService
        #: instances for one node, doubling file handles and splitting
        #: the per-node cache/lock in two.
        self._sources_lock = threading.Lock()

    def source(self, node: str) -> DataSourceService:
        """The node's service, built lazily under the construction lock."""
        with self._sources_lock:
            source = self.sources.get(node)
            if source is None:
                mount = self.cluster.mount()
                if self.fault_injector is not None:
                    mount = self.fault_injector.wrap(mount)
                source = DataSourceService(
                    node,
                    mount,
                    self.filtering,
                    segment_cache_bytes=self.segment_cache_bytes,
                    handle_cache=self.handle_cache,
                )
                self.sources[node] = source
            return source

    def execute_node(
        self,
        node: str,
        plan: ExtractionPlan,
        afcs: List[AlignedFileChunkSet],
        stats: IOStats,
        tracer=NULL_TRACER,
        options=None,
    ) -> VirtualTable:
        return self.source(node).execute(plan, afcs, stats, tracer, options)

    def drop_caches(self) -> None:
        with self._sources_lock:
            sources = list(self.sources.values())
        for source in sources:
            source.drop_caches()

    def close(self) -> None:
        with self._sources_lock:
            sources = list(self.sources.values())
        for source in sources:
            source.close()

    def __repr__(self) -> str:
        return (
            f"<LocalTransport {len(self.cluster)} node(s) at "
            f"{self.cluster.root!r}>"
        )
