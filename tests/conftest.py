"""Shared fixtures: small on-disk datasets and comparison helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompiledDataset, GeneratedDataset, Virtualizer, local_mount
from repro.datasets import IparsConfig, TitanConfig, ipars, titan
from repro.index import build_summaries

# ---------------------------------------------------------------------------
# The paper's running example (Figure 4), scaled down
# ---------------------------------------------------------------------------

from repro.datasets.paper_example import (
    PAPER_CELLS,
    PAPER_DESCRIPTOR,
    PAPER_DIRS,
    PAPER_RELS,
    PAPER_TIMES,
    paper_rows,
    paper_value_fn,
)

@pytest.fixture(scope="session")
def paper_dataset(tmp_path_factory):
    """(descriptor text, mount) with the Figure 4 dataset materialised."""
    from repro.datasets.writers import write_dataset

    root = tmp_path_factory.mktemp("paper")
    mount = local_mount(str(root))
    dataset = CompiledDataset(PAPER_DESCRIPTOR)
    write_dataset(dataset, mount, paper_value_fn)
    return PAPER_DESCRIPTOR, mount


# ---------------------------------------------------------------------------
# Small IPARS / Titan datasets
# ---------------------------------------------------------------------------

SMALL_IPARS = IparsConfig(num_rels=2, num_times=12, cells_per_node=40, num_nodes=2)
SMALL_TITAN = TitanConfig(
    chunks_x=4, chunks_y=4, chunks_z=2, chunks_t=2,
    elems_per_chunk=100, num_nodes=2,
)


@pytest.fixture(scope="session")
def ipars_l0(tmp_path_factory):
    root = tmp_path_factory.mktemp("ipars_l0")
    mount = local_mount(str(root))
    text, _ = ipars.generate(SMALL_IPARS, "L0", mount)
    return SMALL_IPARS, text, mount


@pytest.fixture(scope="session")
def titan_small(tmp_path_factory):
    root = tmp_path_factory.mktemp("titan")
    mount = local_mount(str(root))
    text, _ = titan.generate(SMALL_TITAN, mount)
    dataset = CompiledDataset(text)
    summaries = build_summaries(dataset, mount)
    return SMALL_TITAN, text, mount, summaries


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def assert_tables_equal(a, b, approx=False):
    """Compare two VirtualTables as canonical (sorted) row multisets."""
    assert a.column_names == b.column_names, (a.column_names, b.column_names)
    assert a.num_rows == b.num_rows, (a.num_rows, b.num_rows)
    ca, cb = a.canonical(), b.canonical()
    for name in a.column_names:
        va, vb = ca[name], cb[name]
        if approx:
            np.testing.assert_allclose(
                va.astype(np.float64), vb.astype(np.float64), rtol=1e-6
            )
        else:
            np.testing.assert_array_equal(va, vb)
