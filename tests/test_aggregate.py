"""Aggregate & GROUP BY: parsing, the partial-aggregation kernel, and
every execution path (in-process, service, summary fast path, ablation,
cache), asserted against client-side numpy references."""

import numpy as np
import pytest

from repro.core import ExecOptions, IOStats, Virtualizer, VirtualTable
from repro.core.aggregate import (
    AggregateSpec,
    aggregate_rows,
    aggregate_spec,
    finalize,
    merge_partials,
    partial_aggregate,
)
from repro.errors import QueryValidationError
from repro.sql import Aggregate, parse_query
from repro.sql.ast import Query


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


class TestParsing:
    def test_count_star(self):
        q = parse_query("SELECT COUNT(*) FROM D")
        assert q.select == [Aggregate("count", None)]
        assert q.is_aggregate and q.group_by is None

    def test_mixed_select_and_group_by(self):
        q = parse_query(
            "SELECT REL, COUNT(*), AVG(SOIL) FROM D "
            "WHERE TIME < 6 GROUP BY REL"
        )
        assert q.select == [
            "REL", Aggregate("count", None), Aggregate("avg", "SOIL"),
        ]
        assert q.group_by == ["REL"]
        assert q.where is not None

    def test_multi_key_group_by(self):
        q = parse_query("SELECT MIN(X) FROM D GROUP BY REL, TIME")
        assert q.group_by == ["REL", "TIME"]

    def test_count_attr(self):
        q = parse_query("SELECT COUNT(X) FROM D")
        assert q.select == [Aggregate("count", "X")]

    def test_roundtrip_through_str(self):
        sql = "SELECT REL, SUM(SOIL) FROM D WHERE TIME > 2 GROUP BY REL"
        assert str(parse_query(str(parse_query(sql)))) == sql

    def test_sum_star_rejected(self):
        from repro.errors import QuerySyntaxError

        with pytest.raises(QuerySyntaxError, match=r"SUM\(\*\)"):
            parse_query("SELECT SUM(*) FROM D")

    def test_unknown_aggregate_function(self):
        from repro.errors import QuerySyntaxError

        with pytest.raises(QuerySyntaxError, match="MEDIAN"):
            parse_query("SELECT MEDIAN(X) FROM D")

    def test_group_by_only_is_aggregate(self):
        q = parse_query("SELECT REL FROM D GROUP BY REL")
        assert q.is_aggregate and q.aggregates() == []

    def test_plain_query_unchanged(self):
        q = parse_query("SELECT X, Y FROM D WHERE X > 1")
        assert not q.is_aggregate
        assert q.projected_names(["X", "Y", "Z"]) == ["X", "Y"]


# ---------------------------------------------------------------------------
# The kernel: partial_aggregate / merge_partials / finalize
# ---------------------------------------------------------------------------

DTYPES = {
    "G": np.dtype(np.int16),
    "H": np.dtype(np.int32),
    "V": np.dtype(np.float32),
    "N": np.dtype(np.int32),
}


def spec_for(sql: str) -> AggregateSpec:
    return aggregate_spec(parse_query(sql), list(DTYPES))


def rows(n, seed):
    rng = np.random.default_rng(seed)
    return {
        "G": rng.integers(0, 4, n).astype(np.int16),
        "H": rng.integers(0, 3, n).astype(np.int32),
        "V": rng.random(n, dtype=np.float32),
        "N": rng.integers(-50, 50, n).astype(np.int32),
    }


class TestKernel:
    SQL = (
        "SELECT G, COUNT(*), SUM(V), AVG(V), MIN(V), MAX(V), SUM(N) "
        "FROM D GROUP BY G"
    )

    def test_split_independence(self):
        """Merging per-block partials is bit-identical to one pass."""
        spec = spec_for(self.SQL)
        data = rows(999, seed=1)
        one_pass = finalize(
            spec,
            merge_partials(
                spec, [partial_aggregate(spec, data, 999, DTYPES)], DTYPES
            ),
            DTYPES,
        )
        for splits in ([333, 333, 333], [1, 997, 1], [999], [500, 499]):
            frames, at = [], 0
            for size in splits:
                block = {k: v[at:at + size] for k, v in data.items()}
                frames.append(partial_aggregate(spec, block, size, DTYPES))
                at += size
            merged = finalize(
                spec, merge_partials(spec, frames, DTYPES), DTYPES
            )
            for name in one_pass.column_names:
                a, b = one_pass[name], merged[name]
                assert a.dtype == b.dtype
                np.testing.assert_array_equal(a, b)

    def test_zero_row_nodes_are_neutral(self):
        """Empty partial frames (idle nodes) never change the answer."""
        spec = spec_for(self.SQL)
        data = rows(100, seed=2)
        frame = partial_aggregate(spec, data, 100, DTYPES)
        empty = spec.empty_state(DTYPES)
        with_empties = finalize(
            spec,
            merge_partials(spec, [empty, frame, empty, empty], DTYPES),
            DTYPES,
        )
        alone = finalize(
            spec, merge_partials(spec, [frame], DTYPES), DTYPES
        )
        for name in alone.column_names:
            np.testing.assert_array_equal(alone[name], with_empties[name])

    def test_all_empty_merges_to_zero_rows(self):
        spec = spec_for(self.SQL)
        table = finalize(spec, merge_partials(spec, [], DTYPES), DTYPES)
        assert table.num_rows == 0
        assert table.column_names == spec.output

    def test_avg_is_exact_not_mean_of_means(self):
        """AVG merges (sum, count) pairs; a mean of partial means would
        be wrong whenever node row counts are skewed."""
        spec = spec_for("SELECT AVG(V) FROM D GROUP BY G")
        # One group; node A holds 1 row of value 0, node B 99 rows of 1.
        a = {"G": np.zeros(1, np.int16), "V": np.zeros(1, np.float32)}
        b = {"G": np.zeros(99, np.int16), "V": np.ones(99, np.float32)}
        merged = finalize(
            spec,
            merge_partials(
                spec,
                [
                    partial_aggregate(spec, a, 1, DTYPES),
                    partial_aggregate(spec, b, 99, DTYPES),
                ],
                DTYPES,
            ),
            DTYPES,
        )
        assert merged["AVG(V)"][0] == pytest.approx(0.99)
        naive_mean_of_means = (0.0 + 1.0) / 2
        assert merged["AVG(V)"][0] != pytest.approx(naive_mean_of_means)

    def test_group_key_ordering_deterministic(self):
        """Rows come out sorted by group key regardless of input order."""
        spec = spec_for("SELECT G, H, COUNT(*) FROM D GROUP BY G, H")
        data = rows(500, seed=3)
        shuffled = {k: v[::-1] for k, v in data.items()}
        t1 = aggregate_rows(
            spec, VirtualTable(data, order=list(data)), DTYPES
        )
        t2 = aggregate_rows(
            spec, VirtualTable(shuffled, order=list(shuffled)), DTYPES
        )
        g = np.asarray(t1["G"])
        h = np.asarray(t1["H"])
        order = np.lexsort((h, g))
        np.testing.assert_array_equal(order, np.arange(len(g)))
        for name in t1.column_names:
            np.testing.assert_array_equal(t1[name], t2[name])

    def test_dtype_policy(self):
        spec = spec_for(
            "SELECT G, COUNT(*), SUM(N), SUM(V), MIN(V), MAX(N), AVG(N) "
            "FROM D GROUP BY G"
        )
        data = rows(64, seed=4)
        table = aggregate_rows(
            spec, VirtualTable(data, order=list(data)), DTYPES
        )
        assert table["G"].dtype == np.int16          # group key keeps dtype
        assert table["COUNT(*)"].dtype == np.int64
        assert table["SUM(N)"].dtype == np.int64     # int sums widen exactly
        assert table["SUM(V)"].dtype == np.float64   # float sums in float64
        assert table["MIN(V)"].dtype == np.float32   # min/max keep dtype
        assert table["MAX(N)"].dtype == np.int32
        assert table["AVG(N)"].dtype == np.float64

    def test_spec_validates_grouping_rule(self):
        with pytest.raises(QueryValidationError, match="GROUP BY"):
            aggregate_spec(
                parse_query("SELECT V, COUNT(*) FROM D GROUP BY G"),
                list(DTYPES),
            )
        with pytest.raises(QueryValidationError, match="unknown"):
            aggregate_spec(
                parse_query("SELECT SUM(NOPE) FROM D"), list(DTYPES)
            )
        with pytest.raises(QueryValidationError, match="unknown"):
            aggregate_spec(
                parse_query("SELECT COUNT(*) FROM D GROUP BY NOPE"),
                list(DTYPES),
            )

    def test_projected_names_rejects_aggregates(self):
        q = parse_query("SELECT COUNT(*) FROM D")
        with pytest.raises(QueryValidationError):
            q.projected_names(["X"])


# ---------------------------------------------------------------------------
# End-to-end, in process, against numpy references
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def ipars_v(ipars_l0):
    _, text, mount = ipars_l0
    with Virtualizer(text, mount) as v:
        yield v


class TestEndToEnd:
    def test_grouped_aggregates_match_reference(self, ipars_v):
        stats = IOStats()
        table = ipars_v.query(
            "SELECT REL, COUNT(*), SUM(SOIL), AVG(SOIL), MIN(SOIL), "
            "MAX(SOIL) FROM IparsData WHERE TIME < 6 GROUP BY REL",
            stats=stats,
        )
        ref = ipars_v.query(
            "SELECT REL, SOIL FROM IparsData WHERE TIME < 6"
        )
        rel, soil = ref["REL"], ref["SOIL"]
        assert list(table["REL"]) == sorted(set(rel))
        for i, g in enumerate(table["REL"]):
            m = rel == g
            v = soil[m].astype(np.float64)
            assert table["COUNT(*)"][i] == m.sum()
            assert table["SUM(SOIL)"][i] == pytest.approx(v.sum())
            assert table["AVG(SOIL)"][i] == pytest.approx(v.mean())
            assert table["MIN(SOIL)"][i] == soil[m].min()
            assert table["MAX(SOIL)"][i] == soil[m].max()
        assert stats.rows_aggregated == ref.num_rows
        assert stats.groups_emitted >= table.num_rows

    def test_count_attr_equals_count_star(self, ipars_v):
        a = ipars_v.query("SELECT COUNT(*) FROM IparsData WHERE TIME < 4")
        b = ipars_v.query("SELECT COUNT(SOIL) FROM IparsData WHERE TIME < 4")
        assert a["COUNT(*)"][0] == b["COUNT(SOIL)"][0] > 0

    def test_zero_matching_rows_gives_zero_row_table(self, ipars_v):
        table = ipars_v.query(
            "SELECT COUNT(*), AVG(SOIL) FROM IparsData WHERE TIME > 999"
        )
        assert table.num_rows == 0
        assert table.column_names == ("COUNT(*)", "AVG(SOIL)")

    def test_group_vanishes_when_fully_filtered(self, ipars_v):
        table = ipars_v.query(
            "SELECT REL, COUNT(*) FROM IparsData WHERE REL = 1 GROUP BY REL"
        )
        assert list(table["REL"]) == [1]

    def test_distinct_via_group_by(self, ipars_v):
        table = ipars_v.query(
            "SELECT REL, TIME FROM IparsData WHERE TIME <= 3 "
            "GROUP BY REL, TIME"
        )
        ref = ipars_v.query("SELECT REL, TIME FROM IparsData WHERE TIME <= 3")
        pairs = set(zip(ref["REL"].tolist(), ref["TIME"].tolist()))
        assert table.num_rows == len(pairs)
        assert set(zip(table["REL"].tolist(), table["TIME"].tolist())) == pairs

    def test_select_star_group_by_projects_group_key(self, ipars_v):
        table = ipars_v.query("SELECT * FROM IparsData GROUP BY REL")
        assert table.column_names == ("REL",)

    def test_query_iter_streams_aggregate_result(self, ipars_v):
        batches = list(
            ipars_v.query_iter(
                "SELECT REL, COUNT(*) FROM IparsData GROUP BY REL",
                options=ExecOptions(batch_rows=1),
            )
        )
        assert all(b.num_rows == 1 for b in batches)
        assert sum(b.num_rows for b in batches) == 2

    def test_explain_mentions_aggregate(self, ipars_v):
        text = ipars_v.explain(
            "SELECT REL, COUNT(*) FROM IparsData GROUP BY REL"
        )
        assert "aggregate" in text and "COUNT(*)" in text


class TestSummaryFastPath:
    def test_implicit_bounds_answer_without_reads(self, ipars_v):
        stats = IOStats()
        table = ipars_v.query(
            "SELECT COUNT(*), MIN(TIME), MAX(TIME) FROM IparsData",
            stats=stats,
        )
        assert stats.bytes_read == 0
        assert stats.chunks_read == 0
        ref = ipars_v.query("SELECT TIME FROM IparsData")
        assert table["COUNT(*)"][0] == ref.num_rows
        assert table["MIN(TIME)"][0] == ref["TIME"].min()
        assert table["MAX(TIME)"][0] == ref["TIME"].max()

    def test_stored_attr_uses_chunk_summaries(self, titan_small):
        _, text, mount, summaries = titan_small
        with Virtualizer(text, mount, summaries=summaries) as v:
            stats = IOStats()
            table = v.query(
                "SELECT COUNT(*), MIN(X), MAX(X) FROM TitanData",
                stats=stats,
            )
            assert stats.bytes_read == 0
            ref = v.query("SELECT X FROM TitanData")
            assert table["COUNT(*)"][0] == ref.num_rows
            assert table["MIN(X)"][0] == ref["X"].min()
            assert table["MAX(X)"][0] == ref["X"].max()

    def test_predicate_disables_fast_path(self, ipars_v):
        # chunks_read, not bytes_read: the virtualizer's segment cache
        # serves warm re-reads with zero disk bytes, but a real
        # extraction still walks chunks — a summary answer walks none.
        stats = IOStats()
        ipars_v.query(
            "SELECT COUNT(*), MIN(SOIL) FROM IparsData WHERE SOIL > 0.5",
            stats=stats,
        )
        assert stats.chunks_read > 0

    def test_avg_never_summary_answered(self, ipars_v):
        # AVG(SOIL), a stored attribute: AVG needs every value, so the
        # bounds-only fast path must decline and chunks must be walked.
        stats = IOStats()
        ipars_v.query("SELECT AVG(SOIL) FROM IparsData", stats=stats)
        assert stats.chunks_read > 0
        assert stats.rows_aggregated > 0


# ---------------------------------------------------------------------------
# The service paths: pushdown vs coordinator-side ablation
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def ipars_service(tmp_path_factory):
    from repro.core import GeneratedDataset
    from repro.datasets import IparsConfig, ipars
    from repro.storm import QueryService, VirtualCluster

    root = tmp_path_factory.mktemp("agg_storm")
    config = IparsConfig(
        num_rels=2, num_times=10, cells_per_node=40, num_nodes=3
    )
    cluster = VirtualCluster.create(str(root), config.num_nodes)
    text, _ = ipars.generate(config, "L0", cluster.mount())
    with QueryService(GeneratedDataset(text), cluster) as service:
        yield service


AGG_SQL = (
    "SELECT REL, COUNT(*), SUM(SOIL), AVG(SOIL), MIN(SOIL), MAX(SOIL) "
    "FROM IparsData WHERE TIME < 6 GROUP BY REL"
)


class TestServicePaths:
    def test_ablation_bit_identical(self, ipars_service):
        pushed = ipars_service.submit(AGG_SQL, ExecOptions(remote=False))
        pulled = ipars_service.submit(
            AGG_SQL, ExecOptions(remote=False, agg_pushdown=False)
        )
        for name in pushed.table.column_names:
            a, b = pushed.table[name], pulled.table[name]
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)

    def test_pushdown_aggregates_on_nodes(self, ipars_service):
        result = ipars_service.submit(AGG_SQL, ExecOptions(remote=False))
        node_stats = {
            k: v for k, v in result.per_node_stats.items()
            if not k.startswith("_")
        }
        assert sum(s.rows_aggregated for s in node_stats.values()) > 0
        assert all(s.groups_emitted > 0 for s in node_stats.values())

    def test_ablation_aggregates_at_coordinator(self, ipars_service):
        from repro.storm.query_service import COORDINATOR_NODE

        result = ipars_service.submit(
            AGG_SQL, ExecOptions(remote=False, agg_pushdown=False)
        )
        coord = result.per_node_stats[COORDINATOR_NODE]
        assert coord.rows_aggregated > 0
        for name, s in result.per_node_stats.items():
            if not name.startswith("_"):
                assert s.rows_aggregated == 0

    def test_summary_node_in_service(self, ipars_service):
        from repro.storm.query_service import SUMMARY_NODE

        result = ipars_service.submit(
            "SELECT COUNT(*) FROM IparsData", ExecOptions(remote=False)
        )
        assert SUMMARY_NODE in result.per_node_stats
        assert result.per_node_stats[SUMMARY_NODE].bytes_read == 0
        assert result.table["COUNT(*)"][0] > 0


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------


class TestAggregateCaching:
    OPTS = ExecOptions(cache_mode="subsume")
    SQL = (
        "SELECT REL, COUNT(*), AVG(SOIL) FROM IparsData "
        "WHERE SOIL < 0.5 GROUP BY REL"
    )

    @pytest.fixture()
    def v(self, ipars_l0):
        _, text, mount = ipars_l0
        with Virtualizer(text, mount) as v:
            yield v

    def test_exact_hit_serves_identical_result(self, v):
        cold, warm = IOStats(), IOStats()
        t1 = v.query(self.SQL, stats=cold, options=self.OPTS)
        t2 = v.query(self.SQL, stats=warm, options=self.OPTS)
        assert cold.bytes_read > 0 and warm.bytes_read == 0
        assert warm.result_cache_hits == 1
        for name in t1.column_names:
            np.testing.assert_array_equal(t1[name], t2[name])

    def test_no_subsumption_for_aggregates(self, v):
        v.query(self.SQL, options=self.OPTS)
        narrower = IOStats()
        v.query(
            "SELECT REL, COUNT(*), AVG(SOIL) FROM IparsData "
            "WHERE SOIL < 0.25 GROUP BY REL",
            stats=narrower,
            options=self.OPTS,
        )
        # A narrower row query would have been refiltered from cache;
        # a reduced table cannot be, so this must re-extract (chunks_read
        # counts extraction even when the segment cache avoids disk).
        assert narrower.chunks_read > 0
        assert narrower.result_cache_hits == 0
        assert narrower.subsumption_hits == 0

    def test_distinct_and_row_query_do_not_collide(self, v):
        distinct = v.query(
            "SELECT REL, TIME FROM IparsData WHERE TIME < 3 "
            "GROUP BY REL, TIME",
            options=self.OPTS,
        )
        plain = v.query(
            "SELECT REL, TIME FROM IparsData WHERE TIME < 3",
            options=self.OPTS,
        )
        assert distinct.num_rows < plain.num_rows

    def test_grouped_and_ungrouped_do_not_collide(self, v):
        grouped = v.query(
            "SELECT COUNT(*) FROM IparsData WHERE SOIL < 0.5 GROUP BY REL",
            options=self.OPTS,
        )
        ungrouped = v.query(
            "SELECT COUNT(*) FROM IparsData WHERE SOIL < 0.5",
            options=self.OPTS,
        )
        assert grouped.num_rows == 2 and ungrouped.num_rows == 1


# ---------------------------------------------------------------------------
# Diagnostics
# ---------------------------------------------------------------------------


class TestDiagnostics:
    @pytest.fixture(scope="class")
    def descriptor(self, ipars_l0):
        from repro.metadata import parse_descriptor

        _, text, _ = ipars_l0
        return parse_descriptor(text)

    def _codes(self, descriptor, sql):
        from repro.diag import analyze_query

        return [d.code for d in analyze_query(descriptor, sql)]

    def test_clean_aggregate_query(self, descriptor):
        codes = self._codes(
            descriptor,
            "SELECT REL, COUNT(*), AVG(SOIL) FROM IparsData GROUP BY REL",
        )
        assert codes == []

    def test_rq211_bare_attr_not_grouped(self, descriptor):
        codes = self._codes(
            descriptor, "SELECT SOIL, COUNT(*) FROM IparsData GROUP BY REL"
        )
        assert "RQ211" in codes

    def test_rq212_unknown_group_attr(self, descriptor):
        codes = self._codes(
            descriptor, "SELECT COUNT(*) FROM IparsData GROUP BY NOPE"
        )
        assert "RQ212" in codes

    def test_rq213_unknown_aggregate_arg(self, descriptor):
        codes = self._codes(descriptor, "SELECT SUM(NOPE) FROM IparsData")
        assert "RQ213" in codes and "RQ202" not in codes

    def test_rq214_distinct_info(self, descriptor):
        codes = self._codes(
            descriptor, "SELECT REL FROM IparsData GROUP BY REL"
        )
        assert "RQ214" in codes

    def test_rq210_duplicate_aggregate(self, descriptor):
        codes = self._codes(
            descriptor, "SELECT COUNT(*), COUNT(*) FROM IparsData"
        )
        assert "RQ210" in codes

    def test_ro308_pushdown_disabled(self):
        from repro.diag import analyze_options

        codes = [
            d.code for d in analyze_options(ExecOptions(agg_pushdown=False))
        ]
        assert codes == ["RO308"]
        assert analyze_options(ExecOptions()) == []
