"""Hand-written baselines must agree exactly with the generated planner."""

import numpy as np
import pytest

from repro.baselines import HandwrittenIparsL0, HandwrittenTitan
from repro.core import Extractor, Virtualizer
from repro.datasets import figure7_queries, figure8_queries
from repro.errors import QueryValidationError
from tests.conftest import SMALL_IPARS, SMALL_TITAN, assert_tables_equal

IPARS_QUERIES = [
    "SELECT * FROM IparsData",
    "SELECT * FROM IparsData WHERE TIME>3 AND TIME<9",
    "SELECT REL, SOIL FROM IparsData WHERE REL = 1 AND SOIL > 0.6",
    "SELECT * FROM IparsData WHERE SPEED(OILVX, OILVY, OILVZ) < 15",
    "SELECT X FROM IparsData WHERE TIME IN (2, 4)",
]


class TestHandwrittenIpars:
    @pytest.fixture(scope="class")
    def env(self, ipars_l0):
        config, text, mount = ipars_l0
        return (
            Virtualizer(text, mount),
            HandwrittenIparsL0(config),
            Extractor(mount),
        )

    @pytest.mark.parametrize("sql", IPARS_QUERIES)
    def test_matches_generated(self, env, sql):
        generated, hand, extractor = env
        expected = generated.query(sql)
        got = extractor.execute(hand.plan(sql))
        assert_tables_equal(got, expected)

    def test_figure8_queries(self, env):
        generated, hand, extractor = env
        for sql in figure8_queries(SMALL_IPARS):
            expected = generated.query(sql)
            got = extractor.execute(hand.plan(sql))
            assert_tables_equal(got, expected)

    def test_afc_shape_matches_paper(self, env):
        _, hand, _ = env
        afcs = hand.index({})
        # 18 chunks per AFC: COORDS + 17 variable files.
        assert all(len(a.chunks) == 18 for a in afcs)
        assert len(afcs) == (
            SMALL_IPARS.num_nodes * SMALL_IPARS.num_rels * SMALL_IPARS.num_times
        )

    def test_unknown_attribute(self, env):
        _, hand, _ = env
        with pytest.raises(QueryValidationError):
            hand.plan("SELECT GHOST FROM IparsData")


class TestHandwrittenTitan:
    @pytest.fixture(scope="class")
    def env(self, titan_small):
        config, text, mount, summaries = titan_small
        return (
            Virtualizer(text, mount, summaries=summaries),
            HandwrittenTitan(config, summaries),
            Extractor(mount),
        )

    @pytest.mark.parametrize("qi", range(5))
    def test_figure7_queries_match(self, env, qi):
        generated, hand, extractor = env
        sql = figure7_queries(SMALL_TITAN)[qi]
        expected = generated.query(sql)
        got = extractor.execute(hand.plan(sql))
        assert_tables_equal(got, expected)

    def test_prunes_with_summaries(self, env):
        _, hand, _ = env
        from repro.sql import parse_where
        from repro.sql.ranges import extract_ranges

        all_chunks = hand.index({})
        box = extract_ranges(
            parse_where("X >= 0 AND X <= 5000 AND Y >= 0 AND Y <= 5000")
        )
        pruned = hand.index(box)
        assert 0 < len(pruned) < len(all_chunks)

    def test_without_summaries_keeps_everything(self, titan_small):
        config, _, _, _ = titan_small
        hand = HandwrittenTitan(config, summaries=None)
        from repro.sql import parse_where
        from repro.sql.ranges import extract_ranges

        box = extract_ranges(parse_where("X <= 100"))
        assert len(hand.index(box)) == config.total_chunks
