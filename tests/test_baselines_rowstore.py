"""Tests for the PostgreSQL-substitute row store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.btree import BTreeIndex
from repro.baselines.pages import (
    DATUM,
    HeapLayout,
    PAGE_SIZE,
    TUPLE_HEADER,
    encode_pages,
    tid,
    tid_page,
    tid_slot,
)
from repro.baselines.rowstore import MiniRowStore
from repro.core.stats import IOStats
from repro.core.table import VirtualTable
from repro.errors import RowStoreError
from repro.sql.ranges import IntervalSet


def make_table(n, seed=3):
    rng = np.random.default_rng(seed)
    return VirtualTable(
        {
            "T": np.arange(n, dtype=np.float64),
            "A": rng.random(n),
            "B": rng.random(n) * 100,
        },
        order=["T", "A", "B"],
    )


class TestHeapLayout:
    def test_geometry(self):
        layout = HeapLayout(9)
        assert layout.tuple_bytes == TUPLE_HEADER + 9 * DATUM
        assert layout.tuples_per_page >= 1
        assert layout.data_start > 24

    def test_storage_blowup_factor(self):
        """A 9-column float32-ish record (36 raw bytes) blows up ~3x,
        matching the paper's 6 GB -> 18 GB measurement."""
        layout = HeapLayout(9)
        rows = 100_000
        heap = layout.heap_bytes(rows)
        raw = rows * 36
        assert 2.3 < heap / raw < 3.5

    def test_too_many_columns(self):
        with pytest.raises(RowStoreError):
            HeapLayout(2000).tuples_per_page


class TestEncodeDecode:
    @given(st.integers(0, 700))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, n):
        table = make_table(n)
        payload = encode_pages(
            {c: table.column(c) for c in table.column_names},
            list(table.column_names),
        )
        layout = HeapLayout(3)
        assert len(payload) == layout.heap_bytes(n)
        from repro.baselines.rowstore import _decode_batch

        decoded = _decode_batch(
            payload, layout, list(table.column_names), ["A", "T"], n
        )
        np.testing.assert_array_equal(decoded["T"], table["T"])
        np.testing.assert_array_equal(decoded["A"], table["A"])


class TestTids:
    def test_pack_unpack(self):
        pages = np.array([0, 1, 65535])
        slots = np.array([0, 7, 12])
        packed = tid(pages, slots)
        np.testing.assert_array_equal(tid_page(packed), pages)
        np.testing.assert_array_equal(tid_slot(packed), slots)


class TestBTree:
    def test_range_search(self):
        values = np.array([5.0, 1.0, 3.0, 9.0, 3.0])
        tids = np.arange(5, dtype=np.uint64)
        index = BTreeIndex.build("V", values, tids)
        hits = index.search(IntervalSet.of(3, 5))
        assert sorted(hits.tolist()) == [0, 2, 4]

    def test_open_bounds(self):
        values = np.arange(10, dtype=np.float64)
        index = BTreeIndex.build("V", values, np.arange(10, dtype=np.uint64))
        from repro.sql.ranges import Interval

        hits = index.search(IntervalSet([Interval(3, 6, lo_open=True,
                                                  hi_open=True)]))
        assert sorted(hits.tolist()) == [4, 5]

    def test_selectivity_estimate(self):
        values = np.arange(1000, dtype=np.float64)
        index = BTreeIndex.build("V", values, np.arange(1000, dtype=np.uint64))
        assert index.estimate_selectivity(IntervalSet.of(0, 99)) == pytest.approx(0.1)
        assert index.estimate_selectivity(IntervalSet.full()) == 1.0

    def test_search_counts_index_io(self):
        values = np.arange(10000, dtype=np.float64)
        index = BTreeIndex.build("V", values, np.arange(10000, dtype=np.uint64))
        stats = IOStats()
        index.search(IntervalSet.of(0, 5000), stats)
        assert stats.bytes_read > 0
        assert stats.seeks >= index.height

    def test_misaligned_rejected(self):
        with pytest.raises(RowStoreError):
            BTreeIndex.build("V", np.arange(3.0), np.arange(2, dtype=np.uint64))


class TestMiniRowStore:
    @pytest.fixture
    def store(self, tmp_path):
        store = MiniRowStore(str(tmp_path))
        store.create_table("t", make_table(5000), indexes=["A"])
        return store

    def test_seq_scan_correctness(self, store):
        out = store.query("SELECT T, B FROM t WHERE B < 50")
        reference = make_table(5000)
        mask = reference["B"] < 50
        assert out.num_rows == int(mask.sum())
        np.testing.assert_allclose(
            np.sort(out["T"]), np.sort(reference["T"][mask])
        )

    def test_index_scan_correctness(self, store):
        sql = "SELECT T, A FROM t WHERE A < 0.01"
        assert "Index Scan" in store.explain(sql)
        out = store.query(sql)
        reference = make_table(5000)
        mask = reference["A"] < 0.01
        assert out.num_rows == int(mask.sum())
        np.testing.assert_allclose(
            np.sort(out["A"]), np.sort(reference["A"][mask])
        )

    def test_planner_prefers_seq_scan_for_wide_ranges(self, store):
        assert store.explain("SELECT * FROM t WHERE A < 0.9") == "Seq Scan"

    def test_planner_ignores_unindexed_columns(self, store):
        assert store.explain("SELECT * FROM t WHERE B < 0.001") == "Seq Scan"

    def test_unsatisfiable(self, store):
        out = store.query("SELECT T FROM t WHERE A < 0 AND A > 1")
        assert out.num_rows == 0

    def test_index_scan_reads_fewer_bytes(self, store):
        seq_stats, idx_stats = IOStats(), IOStats()
        store.query("SELECT * FROM t WHERE A < 0.9", seq_stats)
        store.query("SELECT * FROM t WHERE A < 0.005", idx_stats)
        assert idx_stats.bytes_read < seq_stats.bytes_read

    def test_projection(self, store):
        out = store.query("SELECT B FROM t WHERE T < 3")
        assert out.column_names == ("B",)
        assert out.num_rows == 3

    def test_unknown_table(self, store):
        with pytest.raises(RowStoreError, match="no table"):
            store.query("SELECT * FROM ghost")

    def test_unknown_column(self, store):
        with pytest.raises(RowStoreError, match="unknown column"):
            store.query("SELECT * FROM t WHERE GHOST < 1")

    def test_duplicate_table(self, store):
        with pytest.raises(RowStoreError, match="exists"):
            store.create_table("t", make_table(3))

    def test_catalog_reload(self, tmp_path):
        root = str(tmp_path / "db")
        store = MiniRowStore(root)
        store.create_table("t", make_table(500), indexes=["A"])
        reloaded = MiniRowStore(root)
        assert "t" in reloaded.tables
        out = reloaded.query("SELECT T FROM t WHERE A < 0.01")
        assert out.num_rows == store.query("SELECT T FROM t WHERE A < 0.01").num_rows

    def test_drop_table(self, tmp_path):
        store = MiniRowStore(str(tmp_path / "db2"))
        store.create_table("t", make_table(10))
        store.drop_table("t")
        assert "t" not in store.tables
        store.create_table("t", make_table(10))  # name reusable

    def test_empty_table(self, tmp_path):
        store = MiniRowStore(str(tmp_path / "db3"))
        store.create_table("empty", make_table(0))
        out = store.query("SELECT * FROM empty")
        assert out.num_rows == 0
