"""Tests for the benchmark harness itself (measurement + reporting)."""

import json
import os

import pytest

from repro.bench import (
    Measurement,
    Series,
    measure_rowstore,
    measure_storm,
    print_figure,
    ratio,
)
from repro.bench.figures import (
    EXPECTED_SHAPES,
    fig6_titan_config,
    fig9_ipars_config,
    fig10_ipars_config,
)


class TestMeasurement:
    def test_as_dict_roundtrips(self):
        m = Measurement(
            label="x", query="SELECT 1", rows=5, simulated_seconds=1.5,
            wall_seconds=0.1, bytes_read=100,
        )
        d = m.as_dict()
        assert d["rows"] == 5 and d["label"] == "x"
        assert json.dumps(d)  # JSON-serialisable

    def test_series_simulated(self):
        s = Series("a")
        s.add(Measurement("a", "q", 1, 2.0, 0.1, 10))
        s.add(Measurement("a", "q", 1, 3.0, 0.1, 10))
        assert s.simulated == [2.0, 3.0]


class TestPrintFigure:
    def test_writes_json_and_prints(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        s = Series("sys")
        s.add(Measurement("sys", "q1", 10, 1.25, 0.01, 100))
        print_figure("figX", "test title", ["row one"], [s], ["a note"])
        out = capsys.readouterr().out
        assert "figX" in out and "1.25s" in out and "a note" in out
        payload = json.load(open(tmp_path / "figX.json"))
        assert payload["series"][0]["measurements"][0]["rows"] == 10

    def test_uneven_series_padded(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        a = Series("a")
        a.add(Measurement("a", "q", 1, 1.0, 0.1, 1))
        b = Series("b")  # empty
        print_figure("figY", "t", ["r1"], [a, b])
        out = capsys.readouterr().out
        assert "-" in out


class TestRatio:
    def test_basic(self):
        assert ratio(4, 2) == 2.0

    def test_zero_denominator(self):
        assert ratio(1, 0) == float("inf")


class TestMeasureFunctions:
    def test_measure_storm_cold(self, ipars_l0):
        from repro.core import GeneratedDataset
        from repro.storm import QueryService, VirtualCluster

        config, text, mount = ipars_l0
        root = mount("", "").rstrip("/")
        cluster = VirtualCluster(
            root, [f"osu{i}" for i in range(config.num_nodes)]
        )
        service = QueryService(GeneratedDataset(text), cluster)
        m1 = measure_storm(service, "SELECT X FROM IparsData WHERE TIME = 1")
        m2 = measure_storm(service, "SELECT X FROM IparsData WHERE TIME = 1")
        # drop_caches between measurements: identical cold numbers.
        assert m1.bytes_read == m2.bytes_read > 0
        assert m1.simulated_seconds == m2.simulated_seconds
        service.close()

    def test_measure_rowstore(self, tmp_path):
        import numpy as np

        from repro.baselines import MiniRowStore
        from repro.core.table import VirtualTable

        store = MiniRowStore(str(tmp_path))
        store.create_table(
            "t", VirtualTable({"A": np.arange(100.0)}), indexes=["A"]
        )
        m = measure_rowstore(store, "SELECT A FROM t WHERE A < 10")
        assert m.rows == 10
        assert m.simulated_seconds > 0


class TestFigureConfigs:
    def test_expected_shapes_cover_all_figures(self):
        assert set(EXPECTED_SHAPES) == {
            "fig6", "fig9a", "fig9b", "fig10", "fig11a", "fig11b"
        }

    def test_fig10_configs_conserve_total_data(self):
        sizes = set()
        for nodes in (1, 2, 4, 8, 16):
            config = fig10_ipars_config(nodes)
            sizes.add(config.total_cells * config.num_times * config.num_rels)
        assert len(sizes) == 1

    def test_bench_configs_are_modest(self):
        # Guard against accidental multi-GB benchmark datasets.
        titan = fig6_titan_config()
        assert titan.total_rows * titan.row_bytes < 200e6
        ipars = fig9_ipars_config()
        assert ipars.total_rows * ipars.row_bytes < 200e6
