"""Semantic result cache + plan memoization (repro.cache)."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cache import exact_range, key_subsumes, query_key, split_where
from repro.core import ExecOptions, GeneratedDataset, Virtualizer
from repro.core.stats import IOStats
from repro.datasets import IparsConfig, ipars
from repro.faults import FaultInjector, FaultRule
from repro.obs.tracer import Tracer
from repro.sql.parser import parse_query
from repro.sql.ranges import Interval, IntervalSet
from repro.storm import QueryService, VirtualCluster
from repro.storm.query_service import CACHE_NODE

OFF = ExecOptions(remote=False)
EXACT = ExecOptions(remote=False, cache_mode="exact")
SUBSUME = ExecOptions(remote=False, cache_mode="subsume")


def where(text):
    return parse_query(f"SELECT X FROM T WHERE {text}").where


def assert_bit_identical(got, want):
    """Same columns, same dtypes, same values in canonical row order."""
    assert got.column_names == want.column_names
    cg, cw = got.canonical(), want.canonical()
    for name in want.column_names:
        a, b = cg[name], cw[name]
        assert a.dtype == b.dtype, name
        np.testing.assert_array_equal(a, b, err_msg=name)


# ---------------------------------------------------------------------------
# Keying: exact decomposition and subsumption rule
# ---------------------------------------------------------------------------


class TestSplitWhere:
    def test_conjuncts_split_into_ranges_and_residual(self):
        ranges, residual = split_where(where("TIME > 2 AND SOIL > SGAS"))
        assert set(ranges) == {"TIME"}
        assert ranges["TIME"] == IntervalSet([Interval(lo=2, lo_open=True)])
        assert len(residual) == 1  # column-to-column comparison is inexact

    def test_same_attribute_conjuncts_intersect(self):
        ranges, residual = split_where(where("TIME > 2 AND TIME <= 8"))
        assert residual == ()
        assert ranges["TIME"] == IntervalSet(
            [Interval(lo=2, lo_open=True, hi=8)]
        )

    def test_not_flips_comparison(self):
        got = exact_range(where("NOT (TIME > 2)"))
        assert got == ("TIME", IntervalSet([Interval(hi=2)]))

    def test_not_equal_is_two_open_intervals(self):
        got = exact_range(where("TIME != 3"))
        assert got == (
            "TIME",
            IntervalSet(
                [Interval(hi=3, hi_open=True), Interval(lo=3, lo_open=True)]
            ),
        )

    def test_or_on_one_attribute_stays_exact(self):
        got = exact_range(where("TIME < 2 OR TIME > 10"))
        assert got == (
            "TIME",
            IntervalSet(
                [Interval(hi=2, hi_open=True), Interval(lo=10, lo_open=True)]
            ),
        )

    def test_or_across_attributes_is_residual(self):
        ranges, residual = split_where(where("TIME < 2 OR REL = 1"))
        assert ranges == {}
        assert len(residual) == 1

    def test_between_and_in_list(self):
        assert exact_range(where("TIME BETWEEN 1 AND 5")) == (
            "TIME",
            IntervalSet.of(1, 5),
        )
        assert exact_range(where("REL IN (0, 2)")) == (
            "REL",
            IntervalSet.points([0, 2]),
        )


class TestQueryKey:
    def key(self, sql_where, output=("X",)):
        q = parse_query(f"SELECT X FROM T WHERE {sql_where}")
        return query_key("fp", q, output)

    def test_commuted_conjuncts_share_a_key(self):
        assert self.key("TIME > 2 AND SOIL > 0.5") == self.key(
            "SOIL > 0.5 AND TIME > 2"
        )

    def test_output_order_is_part_of_the_key(self):
        assert self.key("TIME > 2", ("X", "Y")) != self.key("TIME > 2", ("Y", "X"))

    def test_broad_subsumes_narrow_not_vice_versa(self):
        broad = self.key("TIME > 2")
        narrow = self.key("TIME > 4 AND TIME < 8")
        assert key_subsumes(broad, narrow)
        assert not key_subsumes(narrow, broad)

    def test_unconstrained_attribute_blocks_subsumption(self):
        assert not key_subsumes(self.key("REL = 1"), self.key("TIME > 4"))

    def test_cached_residual_must_appear_in_new_query(self):
        cached = self.key("TIME > 2 AND SOIL > SGAS")
        assert not key_subsumes(cached, self.key("TIME > 4"))
        assert key_subsumes(cached, self.key("TIME > 4 AND SOIL > SGAS"))

    def test_different_dataset_never_subsumes(self):
        q = parse_query("SELECT X FROM T WHERE TIME > 2")
        a = query_key("fp-a", q, ("X",))
        b = query_key("fp-b", q, ("X",))
        assert a != b
        assert not key_subsumes(a, b)


# ---------------------------------------------------------------------------
# Virtualizer integration
# ---------------------------------------------------------------------------

BROAD = "SELECT X, Y, SOIL FROM IparsData WHERE TIME >= 2"
NARROW = "SELECT X, Y, SOIL FROM IparsData WHERE TIME >= 4 AND TIME <= 8"


@pytest.fixture()
def v(ipars_l0):
    _, text, mount = ipars_l0
    with Virtualizer(text, mount) as virt:
        yield virt


class TestVirtualizerCache:
    def test_exact_hit_skips_io_and_is_identical(self, v):
        cold = v.query(BROAD, options=SUBSUME)
        warm_stats = IOStats()
        warm = v.query(BROAD, stats=warm_stats, options=SUBSUME)
        assert warm_stats.read_calls == 0
        assert warm_stats.result_cache_hits == 1
        assert warm_stats.cache_saved_bytes > 0
        assert_bit_identical(warm, cold)
        # Served arrays are views of the frozen cache: read-only.
        assert not warm.column("X").flags.writeable

    def test_subsumption_bit_identical_to_cold(self, v, ipars_l0):
        _, text, mount = ipars_l0
        v.query(BROAD, options=SUBSUME)
        warm_stats = IOStats()
        warm = v.query(NARROW, stats=warm_stats, options=SUBSUME)
        assert warm_stats.subsumption_hits == 1
        assert warm_stats.read_calls == 0
        assert warm_stats.rows_refiltered > 0
        with Virtualizer(text, mount) as cold_v:
            cold = cold_v.query(NARROW)
        assert_bit_identical(warm, cold)
        # Refiltered results are fresh arrays, safe for callers to mutate.
        assert warm.column("X").flags.writeable

    def test_subsumption_on_unprojected_where_attribute(self, v):
        # TIME is filtered but never selected; the widened stored table
        # must still be able to re-filter on it.
        v.query("SELECT X, SOIL FROM IparsData WHERE TIME >= 2", options=SUBSUME)
        stats = IOStats()
        v.query(
            "SELECT X, SOIL FROM IparsData WHERE TIME >= 4 AND TIME <= 8",
            stats=stats,
            options=SUBSUME,
        )
        assert stats.subsumption_hits == 1
        assert stats.read_calls == 0

    def test_exact_mode_does_not_subsume(self, v):
        v.query(BROAD, options=EXACT)
        stats = IOStats()
        v.query(NARROW, stats=stats, options=EXACT)
        assert stats.subsumption_hits == 0
        assert stats.result_cache_hits == 0
        assert stats.rows_extracted > 0  # really re-executed

    def test_drop_caches_empties_and_resets(self, v):
        v.query(BROAD, options=SUBSUME)
        v.query(BROAD, options=SUBSUME)
        assert v.cache_stats()["result"]["hits"] == 1
        v.drop_caches()
        stats = v.cache_stats()
        assert stats["result"] == {
            "entries": 0, "bytes": 0, "max_bytes": stats["result"]["max_bytes"],
            "hits": 0, "subsumption_hits": 0, "misses": 0, "evictions": 0,
        }
        assert stats["plan"]["entries"] == 0
        rerun = IOStats()
        v.query(BROAD, stats=rerun, options=SUBSUME)
        assert rerun.read_calls > 0  # cold again

    def test_off_mode_reproduces_uncached_counters(self, ipars_l0):
        _, text, mount = ipars_l0
        with Virtualizer(text, mount) as v1:
            plain = IOStats()
            v1.query(NARROW, stats=plain)
        with Virtualizer(text, mount) as v2:
            off = IOStats()
            v2.query(NARROW, stats=off, options=OFF)
            assert v2.cache_stats() is None
        assert off == plain

    def test_lru_eviction_under_byte_budget(self, v):
        # Same-size results so the budget fits either one but not both
        # (sizing off the *stored* entry, which is widened with TIME).
        first = "SELECT X, Y, SOIL FROM IparsData WHERE TIME <= 5"
        second = "SELECT X, Y, SOIL FROM IparsData WHERE TIME >= 8"
        v.query(first, options=SUBSUME)
        stored = v.cache_stats()["result"]["bytes"]
        budget = int(stored * 1.5)  # room for one result, not two
        opts = SUBSUME.replace(result_cache_bytes=budget)
        v.query(second, options=opts)
        stats = v.cache_stats()["result"]
        assert stats["evictions"] >= 1
        assert stats["entries"] == 1
        assert stats["bytes"] <= budget

    def test_plan_cache_hits_without_result_cache(self, v):
        opts = SUBSUME.replace(result_cache_bytes=0)
        v.query(BROAD, options=opts)
        v.query(BROAD, options=opts)
        stats = v.cache_stats()
        assert stats["result"]["entries"] == 0
        assert stats["result"]["misses"] == 2
        assert stats["plan"]["hits"] == 1

    def test_cache_hit_traced(self, v):
        v.query(BROAD, options=SUBSUME)
        tracer = Tracer()
        v.query(NARROW, options=SUBSUME.replace(trace=tracer))
        (event,) = tracer.find("cache_hit")
        assert event.tags["kind"] == "subsume"
        counters = tracer.metrics.as_dict()["counters"]
        assert counters["cache.subsumption_hits"] == 1
        assert counters["bytes.cache_saved"] > 0

    def test_query_resolves_sql_exactly_once(self, v, monkeypatch):
        import repro.core.planner as planner

        parses = []
        real = parse_query

        def counting(text):
            parses.append(text)
            return real(text)

        monkeypatch.setattr(planner, "parse_query", counting)
        v.query(BROAD, options=ExecOptions(trace=True))
        assert parses == [BROAD]
        parses.clear()
        v.plan(NARROW, options=ExecOptions(trace=True))
        assert parses == [NARROW]


class TestStreamingCache:
    def test_query_iter_span_tagged_streaming(self, v):
        tracer = Tracer()
        batches = list(
            v.query_iter(BROAD, options=ExecOptions(trace=tracer, batch_rows=64))
        )
        assert batches
        (span,) = tracer.find("query")
        assert span.tags["streaming"] is True

    def test_streaming_never_populates_the_cache(self, v):
        list(v.query_iter(BROAD, options=SUBSUME))
        assert v.cache_stats()["result"]["entries"] == 0

    def test_warm_iter_serves_batches_from_cache(self, v):
        cold = v.query(BROAD, options=SUBSUME)  # populates
        stats = IOStats()
        opts = SUBSUME.replace(batch_rows=100)
        batches = list(v.query_iter(BROAD, stats=stats, options=opts))
        assert stats.read_calls == 0
        assert stats.result_cache_hits == 1
        assert all(b.num_rows <= 100 for b in batches)
        rebuilt = {
            name: np.concatenate([b.column(name) for b in batches])
            for name in cold.column_names
        }
        for name in cold.column_names:
            np.testing.assert_array_equal(rebuilt[name], cold.column(name))


class TestExecOptionsValidation:
    def test_bad_cache_mode_rejected(self):
        with pytest.raises(ValueError, match="cache_mode"):
            ExecOptions(cache_mode="bogus")

    def test_negative_budgets_rejected(self):
        with pytest.raises(ValueError, match="result_cache_bytes"):
            ExecOptions(result_cache_bytes=-1)
        with pytest.raises(ValueError, match="plan_cache_entries"):
            ExecOptions(plan_cache_entries=-5)


# ---------------------------------------------------------------------------
# QueryService integration (shared cache across nodes and threads)
# ---------------------------------------------------------------------------

CONFIG = IparsConfig(num_rels=2, num_times=10, cells_per_node=30, num_nodes=2)


@pytest.fixture(scope="module")
def storm_env(tmp_path_factory):
    root = tmp_path_factory.mktemp("cache_storm")
    cluster = VirtualCluster.create(str(root), CONFIG.num_nodes)
    text, _ = ipars.generate(CONFIG, "L0", cluster.mount())
    return GeneratedDataset(text), cluster


@pytest.fixture()
def service(storm_env):
    dataset, cluster = storm_env
    with QueryService(dataset, cluster) as svc:
        yield svc


class TestQueryServiceCache:
    def test_hit_served_from_cache_pseudo_node(self, service):
        cold = service.submit(BROAD, SUBSUME)
        assert CACHE_NODE not in cold.per_node_stats
        warm = service.submit(BROAD, SUBSUME)
        assert list(warm.per_node_stats) == [CACHE_NODE]
        assert warm.total_stats.read_calls == 0
        assert warm.total_stats.result_cache_hits == 1
        assert warm.afc_count == cold.afc_count
        assert not warm.degraded
        assert_bit_identical(warm.table, cold.table)

    def test_subsumption_across_nodes_matches_cold(self, service):
        service.submit(BROAD, SUBSUME)
        warm = service.submit(NARROW, SUBSUME)
        assert warm.total_stats.subsumption_hits == 1
        cold = service.submit(NARROW, OFF)
        assert_bit_identical(warm.table, cold.table)

    def test_concurrent_submits_share_cache_soundly(self, service):
        queries = [
            BROAD,
            NARROW,
            "SELECT X, Y, SOIL FROM IparsData WHERE TIME >= 3 AND TIME <= 6",
            "SELECT X, Y, SOIL FROM IparsData WHERE TIME >= 5",
        ]
        reference = {sql: service.submit(sql, OFF).table for sql in queries}
        jobs = queries * 6

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(
                pool.map(lambda sql: service.submit(sql, SUBSUME), jobs)
            )

        # However lookups interleaved with stores, every answer must be
        # complete and correct — a partially-populated entry could not be.
        for sql, result in zip(jobs, results):
            assert not result.degraded
            assert_bit_identical(result.table, reference[sql])
        stats = service.cache_stats()["result"]
        assert stats["hits"] + stats["subsumption_hits"] + stats["misses"] == len(
            jobs
        )
        assert stats["hits"] + stats["subsumption_hits"] > 0

    def test_drop_caches_resets_service_cache(self, service):
        service.submit(BROAD, SUBSUME)
        service.submit(BROAD, SUBSUME)
        service.drop_caches()
        stats = service.cache_stats()
        assert stats["result"]["entries"] == 0
        assert stats["result"]["hits"] == 0
        assert stats["plan"]["entries"] == 0
        rerun = service.submit(BROAD, SUBSUME)
        assert rerun.total_stats.read_calls > 0


class TestCacheFaultIsolation:
    def test_degraded_results_never_cached(self, storm_env):
        dataset, cluster = storm_env
        injector = FaultInjector([FaultRule("node-down", node="osu1")])
        opts = SUBSUME.replace(allow_partial=True, retries=1, retry_backoff=0.0)
        with QueryService(dataset, cluster, fault_injector=injector) as svc:
            first = svc.submit(BROAD, opts)
            assert first.degraded
            assert svc.cache_stats()["result"]["entries"] == 0
            # The repeat must re-execute, not be served the partial table.
            second = svc.submit(BROAD, opts)
            assert second.degraded
            assert second.total_stats.result_cache_hits == 0
            assert svc.cache_stats()["result"]["entries"] == 0

    def test_recovered_fault_injection_still_blocks_store(self, storm_env):
        # The retry recovers a complete result, but the run saw injected
        # faults — conservatively keep it out of the cache.
        dataset, cluster = storm_env
        injector = FaultInjector([FaultRule("raise-on-open", times=1)])
        opts = SUBSUME.replace(retries=2, retry_backoff=0.0)
        with QueryService(dataset, cluster, fault_injector=injector) as svc:
            result = svc.submit(BROAD, opts)
            assert not result.degraded
            assert svc.cache_stats()["result"]["entries"] == 0
            clean = svc.submit(NARROW, opts)  # no faults left to inject
            assert not clean.degraded
            assert svc.cache_stats()["result"]["entries"] == 1
