"""Tests for the command-line interface."""

import io
import json
import os

import numpy as np
import pytest

from repro.cli import main
from tests.conftest import PAPER_DESCRIPTOR


@pytest.fixture(scope="module")
def desc_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ipars.desc"
    path.write_text(PAPER_DESCRIPTOR)
    return str(path)


@pytest.fixture(scope="module")
def data_root(paper_dataset):
    _, mount = paper_dataset
    # The mount maps (node, path) under a root; recover the root.
    return os.path.dirname(mount("osu0", "x")[: -len("/x")])


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestValidate:
    def test_ok(self, capsys, desc_file):
        code, out, _ = run(capsys, "validate", desc_file)
        assert code == 0
        assert "descriptor OK" in out
        assert "physical files: 20" in out
        assert "consistent groups: 16" in out

    def test_invalid_descriptor(self, capsys, tmp_path):
        bad = tmp_path / "bad.desc"
        bad.write_text("[S]\nX = float\n")
        code, _, err = run(capsys, "validate", str(bad))
        assert code == 1
        assert "error:" in err

    def test_missing_file(self, capsys):
        code, _, err = run(capsys, "validate", "/nope/nothing.desc")
        assert code == 1


class TestInventory:
    def test_listing(self, capsys, desc_file):
        code, out, _ = run(capsys, "inventory", desc_file)
        assert code == 0
        assert out.count("\n") >= 20
        assert "DIRID=0" in out and "REL=3" in out

    def test_check_ok(self, capsys, desc_file, data_root):
        code, out, _ = run(
            capsys, "inventory", desc_file, "--root", data_root, "--check"
        )
        assert code == 0
        assert "20/20 files match" in out

    def test_check_detects_problems(self, capsys, desc_file, tmp_path):
        code, out, _ = run(
            capsys, "inventory", desc_file, "--root", str(tmp_path), "--check"
        )
        assert code == 1
        assert "MISSING" in out


class TestCodegen:
    def test_stdout(self, capsys, desc_file):
        code, out, _ = run(capsys, "codegen", desc_file)
        assert code == 0
        assert "def index(ranges" in out

    def test_output_file(self, capsys, desc_file, tmp_path):
        target = tmp_path / "gen.py"
        code, out, _ = run(capsys, "codegen", desc_file, "-o", str(target))
        assert code == 0
        compile(target.read_text(), str(target), "exec")


class TestQuery:
    def test_table_format(self, capsys, desc_file, data_root):
        code, out, _ = run(
            capsys, "query", desc_file,
            "SELECT REL, TIME, SOIL FROM IparsData WHERE TIME = 1 AND REL = 0",
            "--root", data_root, "--limit", "5",
        )
        assert code == 0
        assert "(40 rows)" in out
        assert "more rows" in out

    def test_csv_format(self, capsys, desc_file, data_root):
        code, out, _ = run(
            capsys, "query", desc_file,
            "SELECT REL, TIME FROM IparsData WHERE TIME = 2 AND REL = 1",
            "--root", data_root, "--format", "csv",
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[0] == "REL,TIME"
        assert len(lines) == 1 + 40
        assert lines[1] == "1,2"

    def test_npz_format(self, capsys, desc_file, data_root, tmp_path):
        target = str(tmp_path / "result.npz")
        code, out, _ = run(
            capsys, "query", desc_file,
            "SELECT X FROM IparsData WHERE TIME = 1 AND REL = 0",
            "--root", data_root, "--format", "npz", "-o", target,
        )
        assert code == 0
        from repro.core.table import VirtualTable

        table = VirtualTable.load_npz(target)
        assert table.num_rows == 40

    def test_interpreted_flag(self, capsys, desc_file, data_root):
        code, out, _ = run(
            capsys, "query", desc_file,
            "SELECT REL FROM IparsData WHERE TIME = 1 AND REL = 2",
            "--root", data_root, "--interpreted", "--format", "csv",
        )
        assert code == 0
        assert out.strip().splitlines()[1] == "2"

    def test_bad_sql(self, capsys, desc_file, data_root):
        code, _, err = run(
            capsys, "query", desc_file, "SELECT FROM",
            "--root", data_root,
        )
        assert code == 1
        assert "error:" in err


class TestChaos:
    SQL = "SELECT REL, TIME, SOIL FROM IparsData"

    def test_node_down_profile_degrades(self, capsys, desc_file, data_root):
        code, out, _ = run(
            capsys, "chaos", desc_file, self.SQL, "--root", data_root,
            "--profile", "node-down", "--local", "--backoff", "0",
        )
        assert code == 3
        assert "DEGRADED result: lost osu0" in out
        assert "node-down x" in out
        assert "retries attempted: 2" in out

    def test_flaky_open_profile_recovers(self, capsys, desc_file, data_root):
        code, out, _ = run(
            capsys, "chaos", desc_file, self.SQL, "--root", data_root,
            "--profile", "flaky-open", "--local", "--backoff", "0",
        )
        assert code == 0
        assert "full result survived" in out
        assert "raise-on-open x2" in out

    def test_rule_spec_and_no_partial_fails(self, capsys, desc_file,
                                            data_root):
        code, out, err = run(
            capsys, "chaos", desc_file, self.SQL, "--root", data_root,
            "--rule", "node-down:osu1", "--no-partial", "--local",
            "--retries", "1", "--backoff", "0",
        )
        assert code == 1
        assert "query FAILED" in err
        assert "osu1" in err

    def test_no_rules_is_usage_error(self, capsys, desc_file, data_root):
        code, _, err = run(
            capsys, "chaos", desc_file, self.SQL, "--root", data_root,
        )
        assert code == 2
        assert "no fault rules" in err

    def test_bad_rule_spec_reports_error(self, capsys, desc_file, data_root):
        code, _, err = run(
            capsys, "chaos", desc_file, self.SQL, "--root", data_root,
            "--rule", "disk-melt",
        )
        assert code == 1
        assert "unknown fault kind" in err


class TestExplain:
    def test_plan_summary(self, capsys, desc_file):
        code, out, _ = run(
            capsys, "explain", desc_file,
            "SELECT * FROM IparsData WHERE TIME <= 5",
        )
        assert code == 0
        assert "AFCs planned: 80" in out


class TestXmlCommands:
    def test_to_xml_and_query_roundtrip(self, capsys, desc_file, data_root,
                                        tmp_path):
        code, xml, _ = run(capsys, "to-xml", desc_file)
        assert code == 0
        xml_file = tmp_path / "ipars.xml"
        xml_file.write_text(xml)
        # The query command accepts XML descriptors transparently.
        code, out, _ = run(
            capsys, "query", str(xml_file),
            "SELECT REL FROM IparsData WHERE TIME = 1 AND REL = 3",
            "--root", data_root, "--format", "csv",
        )
        assert code == 0
        assert out.strip().splitlines()[1] == "3"

    def test_from_xml_summary(self, capsys, desc_file, tmp_path):
        _, xml, _ = run(capsys, "to-xml", desc_file)
        xml_file = tmp_path / "d.xml"
        xml_file.write_text(xml)
        code, out, _ = run(capsys, "from-xml", str(xml_file))
        assert code == 0
        assert "[IPARS]" in out


class TestVerifyData:
    @pytest.fixture
    def titan_files(self, titan_small, tmp_path):
        config, text, mount, summaries = titan_small
        desc = tmp_path / "titan.desc"
        desc.write_text(text)
        root = os.path.dirname(mount("osu0", "x")[: -len("/x")])
        summ_file = str(tmp_path / "summ.json")
        summaries.save(summ_file)
        return config, str(desc), root, summ_file, mount

    def test_clean_data_verifies(self, capsys, titan_files):
        _, desc, root, summ_file, _ = titan_files
        code, out, _ = run(
            capsys, "verify-data", desc, "--root", root,
            "--summaries", summ_file,
        )
        assert code == 0
        assert "0 mismatch(es)" in out

    def test_detects_stale_summaries(self, capsys, titan_files, tmp_path):
        import shutil
        import numpy as np

        config, desc, root, summ_file, mount = titan_files
        # Corrupt a copy of the data: overwrite part of one node's file.
        copy_root = str(tmp_path / "tampered")
        shutil.copytree(root, copy_root)
        victim = os.path.join(copy_root, "osu0", config.dirname, "chunks.bin")
        with open(victim, "r+b") as handle:
            handle.write(np.full(64, 9e9, dtype="<f4").tobytes())
        code, out, _ = run(
            capsys, "verify-data", desc, "--root", copy_root,
            "--summaries", summ_file,
        )
        assert code == 1
        assert "STALE" in out

    def test_missing_summary_file(self, capsys, titan_files):
        _, desc, root, _, _ = titan_files
        code, _, err = run(
            capsys, "verify-data", desc, "--root", root,
            "--summaries", "/nope.json",
        )
        assert code == 2
        assert "index-build" in err


class TestIndexBuild:
    def test_builds_and_persists(self, capsys, titan_small, tmp_path):
        config, text, mount, _ = titan_small
        desc = tmp_path / "titan.desc"
        desc.write_text(text)
        root = os.path.dirname(mount("osu0", "x")[: -len("/x")])
        out_file = str(tmp_path / "summ.json")
        code, out, _ = run(
            capsys, "index-build", str(desc), "--root", root, "-o", out_file
        )
        assert code == 0
        assert f"built {config.total_chunks} chunk summaries" in out
        payload = json.load(open(out_file))
        assert len(payload["chunks"]) == config.total_chunks
