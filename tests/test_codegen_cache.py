"""Tests for the persistent generated-module cache."""

import os
import time

import pytest

from repro.core import GeneratedDataset
from repro.core.codegen import _cache_path
from repro.metadata import parse_descriptor
from tests.conftest import PAPER_DESCRIPTOR, assert_tables_equal


class TestCodegenCache:
    def test_miss_then_hit(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = GeneratedDataset(PAPER_DESCRIPTOR, cache_dir=cache)
        assert first.from_cache is False
        files = os.listdir(cache)
        assert len(files) == 1 and files[0].endswith(".generated.py")

        second = GeneratedDataset(PAPER_DESCRIPTOR, cache_dir=cache)
        assert second.from_cache is True
        assert second.source == first.source

    def test_cached_module_plans_identically(self, tmp_path):
        cache = str(tmp_path / "cache")
        fresh = GeneratedDataset(PAPER_DESCRIPTOR, cache_dir=cache)
        cached = GeneratedDataset(PAPER_DESCRIPTOR, cache_dir=cache)
        key = lambda afc: (
            afc.num_rows,
            tuple((c.node, c.path, c.offset) for c in afc.chunks),
            tuple(sorted(afc.constants)),
        )
        assert sorted(map(key, fresh.index({}))) == sorted(
            map(key, cached.index({}))
        )

    def test_cache_hit_skips_group_analysis(self, tmp_path):
        cache = str(tmp_path / "cache")
        GeneratedDataset(PAPER_DESCRIPTOR, cache_dir=cache)
        warm = GeneratedDataset(PAPER_DESCRIPTOR, cache_dir=cache)
        # Lazy groups were never forced on the cache-hit path.
        assert warm._groups is None
        # ...but remain available on demand.
        assert len(warm.groups) == 16

    def test_semantic_change_changes_key(self, tmp_path):
        changed = PAPER_DESCRIPTOR.replace("LOOP TIME 1:20:1", "LOOP TIME 1:21:1")
        a = _cache_path(str(tmp_path), parse_descriptor(PAPER_DESCRIPTOR))
        b = _cache_path(str(tmp_path), parse_descriptor(changed))
        assert a != b

    def test_formatting_change_keeps_key(self, tmp_path):
        reformatted = PAPER_DESCRIPTOR.replace("\n", "\n ").replace(
            "  ", " "
        )
        a = _cache_path(str(tmp_path), parse_descriptor(PAPER_DESCRIPTOR))
        b = _cache_path(str(tmp_path), parse_descriptor(reformatted))
        assert a == b

    def test_queries_through_cached_module(self, paper_dataset, tmp_path):
        from repro.core import Virtualizer

        text, mount = paper_dataset
        cache = str(tmp_path / "cache")
        GeneratedDataset(text, cache_dir=cache)  # populate

        from repro.core.extractor import Extractor

        cached = GeneratedDataset(text, cache_dir=cache)
        with Extractor(mount) as extractor:
            sql = "SELECT REL, SOIL FROM IparsData WHERE TIME <= 2"
            got = extractor.execute(cached.plan(sql))
        with Virtualizer(text, mount) as v:
            assert_tables_equal(got, v.query(sql))

    def test_no_cache_dir_regenerates(self):
        dataset = GeneratedDataset(PAPER_DESCRIPTOR)
        assert dataset.from_cache is False
