"""Concurrency: racing submits share one service graph and agree with serial."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import ExecOptions, GeneratedDataset
from repro.datasets import IparsConfig, ipars
from repro.storm import QueryService, VirtualCluster
from repro.storm.data_source import DataSourceService
from tests.conftest import assert_tables_equal

CONFIG = IparsConfig(num_rels=2, num_times=8, cells_per_node=24, num_nodes=3)
LOCAL = ExecOptions(remote=False)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("concurrent")
    cluster = VirtualCluster.create(str(root), CONFIG.num_nodes)
    text, _ = ipars.generate(CONFIG, "L0", cluster.mount())
    with QueryService(GeneratedDataset(text), cluster) as svc:
        yield svc


@pytest.fixture(scope="module")
def small_service(tmp_path_factory):
    """A service whose caches are small enough to evict constantly."""
    root = tmp_path_factory.mktemp("concurrent_small")
    cluster = VirtualCluster.create(str(root), CONFIG.num_nodes)
    text, _ = ipars.generate(CONFIG, "L0", cluster.mount())
    svc = QueryService(
        GeneratedDataset(text), cluster, handle_cache=2, segment_cache_bytes=4096
    )
    with svc:
        yield svc


def assert_tables_identical(got, want):
    """Bit-identical: same columns, same values, same row order."""
    assert got.column_names == want.column_names
    assert got.num_rows == want.num_rows
    for name in want.column_names:
        np.testing.assert_array_equal(got.column(name), want.column(name), name)


class TestSourceRace:
    def test_concurrent_source_builds_single_instance(self, service, monkeypatch):
        # Widen the construction window: without the lock in _source two
        # threads both miss the dict and build duplicate services.
        created = []
        real_init = DataSourceService.__init__

        def slow_init(self, *args, **kwargs):
            created.append(self)
            time.sleep(0.02)
            real_init(self, *args, **kwargs)

        monkeypatch.setattr(DataSourceService, "__init__", slow_init)
        service.sources.pop("osu0", None)

        num_threads = 8
        barrier = threading.Barrier(num_threads)

        def build():
            barrier.wait()
            return service._source("osu0")

        with ThreadPoolExecutor(max_workers=num_threads) as pool:
            sources = list(pool.map(lambda _: build(), range(num_threads)))

        assert len(created) == 1
        assert all(s is sources[0] for s in sources)
        assert service.sources["osu0"] is sources[0]


class TestConcurrentSubmits:
    QUERIES = [
        "SELECT REL, TIME, X, SOIL FROM IparsData",
        "SELECT REL, TIME, POIL FROM IparsData WHERE TIME <= 4",
        "SELECT X, Y, Z FROM IparsData WHERE REL = 1",
        "SELECT TIME, SGAS FROM IparsData WHERE SOIL > 0.5",
    ]

    def test_parallel_submits_match_serial(self, service):
        jobs = self.QUERIES * 3  # 12 submits over 6 workers
        serial = [service.submit(sql, LOCAL) for sql in jobs]

        with ThreadPoolExecutor(max_workers=6) as pool:
            parallel = list(pool.map(lambda sql: service.submit(sql, LOCAL), jobs))

        for got, want in zip(parallel, serial):
            assert_tables_equal(got.table, want.table)
            assert not got.degraded
            assert got.afc_count == want.afc_count
            totals = got.total_stats
            want_totals = want.total_stats
            assert totals.rows_output == want_totals.rows_output
            assert totals.rows_extracted == want_totals.rows_extracted

        # The service graph did not duplicate under contention: one
        # DataSourceService (hence one extractor + cache) per node.
        assert len(service.sources) == CONFIG.num_nodes
        extractors = {id(s.extractor) for s in service.sources.values()}
        assert len(extractors) == CONFIG.num_nodes


class TestDropCachesRace:
    """Regression: drop_caches() used to close file handles out from
    under in-flight reads (it bypassed any per-query synchronisation),
    surfacing as ValueError('I/O operation on closed file') or short
    reads mid-query.  Handles are pinned around reads now, so cache
    flushes concurrent with queries are safe."""

    QUERIES = [
        "SELECT REL, TIME, X, SOIL FROM IparsData",
        "SELECT TIME, SGAS FROM IparsData WHERE SOIL > 0.5",
    ]

    def test_drop_caches_during_queries(self, small_service):
        service = small_service
        serial = {sql: service.submit(sql, LOCAL) for sql in self.QUERIES}

        errors = []
        done = threading.Event()

        def dropper():
            # Hammer the flush path until every submit has finished.
            while not done.is_set():
                service.drop_caches()

        def run(sql):
            try:
                return service.submit(sql, LOCAL)
            except Exception as exc:  # noqa: BLE001 - collected for report
                errors.append((sql, exc))
                return None

        flusher = threading.Thread(target=dropper, daemon=True)
        flusher.start()
        try:
            jobs = self.QUERIES * 6
            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(run, jobs))
        finally:
            done.set()
            flusher.join(5)

        assert not errors, errors
        for sql, result in zip(jobs, results):
            assert_tables_identical(result.table, serial[sql].table)


class TestSubmitPathThreadHygiene:
    """Regressions for the submit-path thread sweep: one long-lived
    node pool per service (not one pool per submit), and a hard bound
    on sacrificial threads abandoned by the timeout machinery."""

    @pytest.fixture()
    def fresh_env(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("thread_hygiene")
        cluster = VirtualCluster.create(str(root), CONFIG.num_nodes)
        text, _ = ipars.generate(CONFIG, "L0", cluster.mount())
        return cluster, GeneratedDataset(text)

    def test_hundred_submits_share_one_node_pool(self, fresh_env, monkeypatch):
        import repro.storm.query_service as qs

        created = []
        real = qs.ThreadPoolExecutor

        class Counting(real):
            def __init__(self, *args, **kwargs):
                created.append(kwargs.get("thread_name_prefix", ""))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(qs, "ThreadPoolExecutor", Counting)
        cluster, dataset = fresh_env
        with qs.QueryService(dataset, cluster) as service:
            service.submit(self.SQL, LOCAL)  # builds the pool lazily
            before = threading.active_count()
            for _ in range(100):
                result = service.submit(self.SQL, LOCAL)
            assert result.num_rows > 0
            growth = threading.active_count() - before
        # Before the fix every submit built (and leaked the threads of)
        # its own ThreadPoolExecutor: 101 pools and a rising count.
        # The shared pool may still be lazily filling towards its cap,
        # so growth is bounded by the pool size, not per-submit.
        from repro.core.options import resolve_workers

        assert created.count("storm-node") == 1
        assert growth < resolve_workers(0)

    SQL = "SELECT REL, TIME, X, SOIL FROM IparsData"

    class _HangAllMounts:
        """cluster.mount() stand-in that hangs every resolve for one
        node until released."""

        def __init__(self, real_mount, node):
            self._real = real_mount
            self._node = node
            self.release = threading.Event()

        def __call__(self):
            return self._resolve

        def _resolve(self, node, path):
            if node == self._node and not self.release.is_set():
                self.release.wait(30)
            return self._real(node, path)

    def test_sacrificial_threads_are_bounded(self, fresh_env, monkeypatch):
        from repro.sched import threads_abandoned

        cluster, dataset = fresh_env
        mounts = self._HangAllMounts(cluster.mount(), "osu0")
        monkeypatch.setattr(cluster, "mount", mounts)
        opts = LOCAL.replace(
            node_timeout=0.15, retries=2, allow_partial=True, parallel=False
        )
        ledger_before = threads_abandoned()
        try:
            with QueryService(
                dataset, cluster, max_sacrificial_threads=2
            ) as service:
                before = threading.active_count()
                result = service.submit(self.SQL, opts)
                # osu0's three attempts: two spawned-and-abandoned
                # sacrificial threads fill both slots, the third finds
                # the semaphore saturated and times out without ever
                # spawning — the ledger and the thread count both stop
                # at the bound.
                assert result.degraded
                assert "osu0" in result.failed_nodes
                assert threads_abandoned() - ledger_before == 2
                assert threading.active_count() - before <= 2
        finally:
            mounts.release.set()

    def test_recovers_after_hang_clears(self, fresh_env, monkeypatch):
        cluster, dataset = fresh_env
        mounts = self._HangAllMounts(cluster.mount(), "osu0")
        monkeypatch.setattr(cluster, "mount", mounts)
        opts = LOCAL.replace(
            node_timeout=0.15, retries=0, allow_partial=True, parallel=False
        )
        with QueryService(
            dataset, cluster, max_sacrificial_threads=2
        ) as service:
            assert service.submit(self.SQL, opts).degraded
            mounts.release.set()
            # The hung thread drains, frees its slot, and the same
            # service answers cleanly.
            clean = service.submit(self.SQL, LOCAL)
            assert not clean.degraded


class TestCancelQuotaMergeRace:
    """Regression: a cancel or quota trip racing the last node partial
    must never yield a half-merged degraded table — the caller gets the
    complete result or the typed teardown error, nothing in between."""

    SQL = "SELECT REL, TIME, X, SOIL FROM IparsData"

    def test_cancel_race_is_all_or_nothing(self, service):
        import random

        from repro.errors import QueryCancelledError
        from repro.sched import Scheduler

        expected = service.submit(self.SQL, LOCAL).num_rows
        rng = random.Random(7)
        opts = LOCAL.replace(allow_partial=True, retries=1)
        with Scheduler(service, workers=2) as sched:
            for _ in range(15):
                handle = sched.submit(self.SQL, opts)
                time.sleep(rng.uniform(0.0, 0.01))
                handle.cancel()
                try:
                    result = handle.result(timeout=30)
                except QueryCancelledError:
                    continue
                # Finished first: then it must be the whole answer.
                assert not result.degraded
                assert result.num_rows == expected

    def test_quota_trip_never_returns_partial(self, service):
        from repro.errors import QuotaExceededError
        from repro.sched import Scheduler

        expected = service.submit(self.SQL, LOCAL).num_rows
        opts = LOCAL.replace(
            allow_partial=True, retries=1, row_quota=expected - 1
        )
        with Scheduler(service, workers=2) as sched:
            for _ in range(10):
                with pytest.raises(QuotaExceededError):
                    sched.run(self.SQL, opts)


class TestEvictionStress:
    """N threads x mixed queries x tiny caches: results must be
    bit-identical to serial runs and the caches' size accounting must
    still balance once the storm passes."""

    JOBS = [
        ("SELECT REL, TIME, X, SOIL FROM IparsData", LOCAL),
        ("SELECT REL, TIME, POIL FROM IparsData WHERE TIME <= 4", LOCAL),
        (
            "SELECT X, Y, Z FROM IparsData WHERE REL = 1",
            LOCAL.replace(intra_node_workers=3),
        ),
        (
            "SELECT TIME, SGAS FROM IparsData WHERE SOIL > 0.5",
            LOCAL.replace(coalesce_gap_bytes=0),
        ),
        (
            "SELECT REL, TIME, X, SOIL FROM IparsData",
            LOCAL.replace(intra_node_workers=2, coalesce_gap_bytes=0),
        ),
    ]

    def test_stress_matches_serial_and_caches_balance(self, small_service):
        service = small_service
        serial = [service.submit(sql, opts) for sql, opts in self.JOBS]

        jobs = [(i, *job) for _ in range(4) for i, job in enumerate(self.JOBS)]

        def run(job):
            i, sql, opts = job
            return i, service.submit(sql, opts)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(run, jobs))

        for i, result in results:
            assert not result.degraded
            assert_tables_identical(result.table, serial[i].table)

        # One quiescent submit so insert-time eviction has run with no
        # reads in flight, then audit the caches of every node.
        service.submit(*self.JOBS[0])
        for source in service.sources.values():
            seg = source.extractor._segments
            assert seg.size == sum(len(v) for v in seg._segments.values())
            assert seg.size <= seg.capacity
            handles = source.extractor._handles
            assert len(handles) <= handles.capacity
            for entry in handles._handles.values():
                assert entry.pins == 0
                assert not entry.dropped
