"""Concurrency: racing submits share one service graph and agree with serial."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import ExecOptions, GeneratedDataset
from repro.datasets import IparsConfig, ipars
from repro.storm import QueryService, VirtualCluster
from repro.storm.data_source import DataSourceService
from tests.conftest import assert_tables_equal

CONFIG = IparsConfig(num_rels=2, num_times=8, cells_per_node=24, num_nodes=3)
LOCAL = ExecOptions(remote=False)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("concurrent")
    cluster = VirtualCluster.create(str(root), CONFIG.num_nodes)
    text, _ = ipars.generate(CONFIG, "L0", cluster.mount())
    with QueryService(GeneratedDataset(text), cluster) as svc:
        yield svc


class TestSourceRace:
    def test_concurrent_source_builds_single_instance(self, service, monkeypatch):
        # Widen the construction window: without the lock in _source two
        # threads both miss the dict and build duplicate services.
        created = []
        real_init = DataSourceService.__init__

        def slow_init(self, *args, **kwargs):
            created.append(self)
            time.sleep(0.02)
            real_init(self, *args, **kwargs)

        monkeypatch.setattr(DataSourceService, "__init__", slow_init)
        service.sources.pop("osu0", None)

        num_threads = 8
        barrier = threading.Barrier(num_threads)

        def build():
            barrier.wait()
            return service._source("osu0")

        with ThreadPoolExecutor(max_workers=num_threads) as pool:
            sources = list(pool.map(lambda _: build(), range(num_threads)))

        assert len(created) == 1
        assert all(s is sources[0] for s in sources)
        assert service.sources["osu0"] is sources[0]


class TestConcurrentSubmits:
    QUERIES = [
        "SELECT REL, TIME, X, SOIL FROM IparsData",
        "SELECT REL, TIME, POIL FROM IparsData WHERE TIME <= 4",
        "SELECT X, Y, Z FROM IparsData WHERE REL = 1",
        "SELECT TIME, SGAS FROM IparsData WHERE SOIL > 0.5",
    ]

    def test_parallel_submits_match_serial(self, service):
        jobs = self.QUERIES * 3  # 12 submits over 6 workers
        serial = [service.submit(sql, LOCAL) for sql in jobs]

        with ThreadPoolExecutor(max_workers=6) as pool:
            parallel = list(pool.map(lambda sql: service.submit(sql, LOCAL), jobs))

        for got, want in zip(parallel, serial):
            assert_tables_equal(got.table, want.table)
            assert not got.degraded
            assert got.afc_count == want.afc_count
            totals = got.total_stats
            want_totals = want.total_stats
            assert totals.rows_output == want_totals.rows_output
            assert totals.rows_extracted == want_totals.rows_extracted

        # The service graph did not duplicate under contention: one
        # DataSourceService (hence one extractor + cache) per node.
        assert len(service.sources) == CONFIG.num_nodes
        extractors = {id(s.extractor) for s in service.sources.values()}
        assert len(extractors) == CONFIG.num_nodes
