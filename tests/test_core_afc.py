"""Unit tests for the AFC data structures (InnerVar patterns, bounds)."""

import numpy as np
import pytest

from repro.core.afc import (
    AlignedFileChunkSet,
    ChunkRef,
    ExtractionPlan,
    InnerVar,
)
from repro.core.strips import LoopDim, Strip


def strip_of(attrs=("A",), record=4, dims=()):
    offsets, acc = [], 0
    for _ in attrs:
        offsets.append(acc)
        acc += record // len(attrs)
    return Strip(
        leaf_name="leaf",
        strip_index=0,
        attrs=tuple(attrs),
        attr_offsets=tuple(offsets),
        attr_formats=("<f4",) * len(attrs),
        record_size=record,
        base_offset=0,
        dims=tuple(dims),
    )


class TestInnerVar:
    def test_innermost_cycles_every_row(self):
        iv = InnerVar("G", start=5, step=1, count=4, repeat=1)
        np.testing.assert_array_equal(
            iv.materialise(8), [5, 6, 7, 8, 5, 6, 7, 8]
        )

    def test_outer_repeats_in_blocks(self):
        iv = InnerVar("T", start=1, step=1, count=3, repeat=2)
        np.testing.assert_array_equal(
            iv.materialise(6), [1, 1, 2, 2, 3, 3]
        )

    def test_strided_values(self):
        iv = InnerVar("K", start=0, step=10, count=3, repeat=1)
        np.testing.assert_array_equal(iv.materialise(3), [0, 10, 20])

    def test_interval(self):
        iv = InnerVar("K", start=2, step=3, count=4, repeat=1)
        assert iv.interval == (2, 11)

    def test_row_major_composition(self):
        """Two inner vars compose into the row-major enumeration order."""
        outer = InnerVar("T", 1, 1, 2, 3)  # repeat = count of inner
        inner = InnerVar("G", 0, 1, 3, 1)
        rows = 6
        t = outer.materialise(rows)
        g = inner.materialise(rows)
        assert list(zip(t.tolist(), g.tolist())) == [
            (1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2)
        ]


class TestAlignedFileChunkSet:
    @pytest.fixture
    def afc(self):
        return AlignedFileChunkSet(
            num_rows=6,
            chunks=(
                ChunkRef("n0", "f1", 0, 12, strip_of(("X", "Y", "Z"), 12)),
                ChunkRef("n0", "f2", 80, 8, strip_of(("A", "B"), 8)),
            ),
            constants=(("REL", 2), ("DIRID", 0)),
            inner_vars=(
                InnerVar("T", 1, 1, 2, 3),
                InnerVar("G", 0, 1, 3, 1),
            ),
        )

    def test_constant_map(self, afc):
        assert afc.constant_map == {"REL": 2, "DIRID": 0}

    def test_implicit_columns(self, afc):
        cols = afc.implicit_columns(["REL", "T", "G", "X"])
        assert set(cols) == {"REL", "T", "G"}  # X is stored, not implicit
        np.testing.assert_array_equal(cols["REL"], [2] * 6)
        np.testing.assert_array_equal(cols["T"], [1, 1, 1, 2, 2, 2])

    def test_implicit_bounds(self, afc):
        bounds = afc.implicit_bounds()
        assert bounds["REL"] == (2, 2)
        assert bounds["T"] == (1, 2)
        assert bounds["G"] == (0, 2)

    def test_total_bytes(self, afc):
        assert afc.total_bytes() == 6 * 12 + 6 * 8

    def test_chunk_key(self, afc):
        assert afc.chunks[1].key == ("n0", "f2", 80)

    def test_str_matches_paper_notation(self, afc):
        text = str(afc)
        assert text.startswith("{num_rows=6, ")
        assert "{f1, 0, 12}" in text
        assert "{f2, 80, 8}" in text


class TestExtractionPlan:
    def test_planned_totals(self):
        afc = AlignedFileChunkSet(
            num_rows=10,
            chunks=(ChunkRef("n", "f", 0, 4, strip_of()),),
        )
        plan = ExtractionPlan([afc, afc], ["A"], ["A"])
        assert plan.planned_rows == 20
        assert plan.planned_bytes == 80

    def test_empty_plan(self):
        plan = ExtractionPlan([], ["A"], ["A"])
        assert plan.planned_rows == 0
        assert plan.planned_bytes == 0
