"""Tests for the Figure 5 algorithm: file grouping, alignment, AFCs.

These tests walk the paper's own worked example (Section 4): the query
``REL in (0, 1) AND TIME between 1 and 100`` over the Figure 4 descriptor
excludes DATA2/DATA3, groups COORDS with same-directory DATA files, forms
one aligned chunk set per TIME value, and prunes to the queried window.
Our fixture scales the example to 20 time-steps and 10 cells per node;
the structural counts scale accordingly.
"""

import pytest

from repro.core.analysis import (
    compute_alignment,
    consistent_group,
    enumerate_afcs,
    find_file_groups,
    match_file,
)
from repro.core.strips import enumerate_files, row_variable_order
from repro.metadata import parse_descriptor
from repro.sql import parse_where
from repro.sql.ranges import extract_ranges
from tests.conftest import PAPER_DESCRIPTOR


@pytest.fixture(scope="module")
def setup():
    descriptor = parse_descriptor(PAPER_DESCRIPTOR)
    files = enumerate_files(descriptor)
    order = row_variable_order(descriptor)
    return descriptor, files, order


def paper_query_ranges():
    # The paper's walkthrough query: REL in (0,1), TIME 1..10 (scaled from
    # 1..100 of 500 to 1..10 of 20).
    return extract_ranges(parse_where("REL IN (0, 1) AND TIME >= 1 AND TIME <= 10"))


class TestMatchFile:
    def test_rel_pruning_excludes_data2_data3(self, setup):
        _, files, _ = setup
        ranges = paper_query_ranges()
        surviving = [f for f in files if match_file(f, ranges)]
        names = sorted({f.relpath.split("/")[-1] for f in surviving})
        assert names == ["COORDS", "DATA0", "DATA1"]
        # 4 coords + 8 data files survive
        assert len(surviving) == 12

    def test_no_ranges_keeps_all(self, setup):
        _, files, _ = setup
        assert all(match_file(f, {}) for f in files)

    def test_grid_constraint_prunes_directories(self, setup):
        _, files, _ = setup
        ranges = extract_ranges(parse_where("GRID >= 25 AND GRID <= 28"))
        surviving = [f for f in files if match_file(f, ranges)]
        # Only DIR[2] hosts grid points 21-30.
        assert {f.dir_index for f in surviving} == {2}


class TestConsistency:
    def test_same_directory_pair_is_consistent(self, setup):
        _, files, _ = setup
        coords0 = next(f for f in files if f.leaf_name == "ipars1" and f.dir_index == 0)
        data0 = next(
            f for f in files
            if f.leaf_name == "ipars2" and f.env == {"REL": 0, "DIRID": 0}
        )
        env = consistent_group([coords0, data0])
        assert env == {"DIRID": 0, "REL": 0}

    def test_cross_directory_pair_is_inconsistent(self, setup):
        """The paper: DIR[0]/COORD and DIR[1]/DATA0 have non-overlapping
        grid ranges, so they cannot jointly produce rows."""
        _, files, _ = setup
        coords0 = next(f for f in files if f.leaf_name == "ipars1" and f.dir_index == 0)
        data1 = next(
            f for f in files
            if f.leaf_name == "ipars2" and f.env == {"REL": 0, "DIRID": 1}
        )
        assert consistent_group([coords0, data1]) is None


class TestFindFileGroups:
    def test_paper_walkthrough_group_count(self, setup):
        """The paper finds 8 groups: {DIR[k]/COORD, DIR[k]/DATA0|DATA1}."""
        _, files, _ = setup
        groups = find_file_groups(
            files, ["ipars1", "ipars2"], paper_query_ranges()
        )
        assert len(groups) == 8
        for group, env in groups:
            assert group[0].dir_index == group[1].dir_index
            assert env["REL"] in (0, 1)

    def test_full_product_without_query(self, setup):
        _, files, _ = setup
        groups = find_file_groups(files, ["ipars1", "ipars2"], {})
        assert len(groups) == 16  # 4 dirs x 4 rels

    def test_empty_when_leaf_fully_pruned(self, setup):
        _, files, _ = setup
        ranges = extract_ranges(parse_where("REL = 99"))
        assert find_file_groups(files, ["ipars1", "ipars2"], ranges) == []


class TestAlignment:
    def test_paper_alignment_is_grid(self, setup):
        descriptor, files, _ = setup
        groups = find_file_groups(files, ["ipars1", "ipars2"], {})
        group, _ = groups[0]
        strips = [s for f in group for s in f.strips]
        alignment = compute_alignment(strips, descriptor.index_attrs)
        assert alignment.inner_vars == ("GRID",)
        assert alignment.num_rows == 10

    def test_index_attr_stays_out_of_chunk(self, setup):
        """Without DATAINDEX, TIME could join the aligned extent for the
        single-strip file; with it, TIME must stay a chunk enumerator."""
        descriptor, files, _ = setup
        data_file = next(f for f in files if f.leaf_name == "ipars2")
        alignment = compute_alignment(data_file.strips, ("REL", "TIME"))
        assert alignment.inner_vars == ("GRID",)
        # Without the index declaration the whole file is one dense chunk.
        free = compute_alignment(data_file.strips, ())
        assert free.inner_vars == ("TIME", "GRID")
        assert free.num_rows == 200

    def test_stored_index_leaf_keeps_outer_dim(self, setup):
        _, files, _ = setup
        data_file = next(f for f in files if f.leaf_name == "ipars2")
        alignment = compute_alignment(
            data_file.strips, (), stored_index_leaves=("ipars2",)
        )
        # Outermost dim (TIME) reserved as the chunking dimension.
        assert alignment.inner_vars == ("GRID",)

    def test_empty_strips_rejected(self):
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            compute_alignment([], ())


class TestEnumerateAfcs:
    def test_paper_afc_counts(self, setup):
        """500 AFC sets per group in the paper; 20 in our scaled fixture,
        10 after TIME pruning."""
        descriptor, files, order = setup
        groups = find_file_groups(
            files, ["ipars1", "ipars2"], paper_query_ranges()
        )
        group, env = groups[0]
        strips = [s for f in group for s in f.strips]
        alignment = compute_alignment(strips, descriptor.index_attrs)

        all_afcs = enumerate_afcs(group, env, alignment, order, {})
        assert len(all_afcs) == 20

        pruned = enumerate_afcs(
            group, env, alignment, order, paper_query_ranges()
        )
        assert len(pruned) == 10
        for afc in pruned:
            assert 1 <= afc.constant_map["TIME"] <= 10

    def test_afc_geometry(self, setup):
        descriptor, files, order = setup
        groups = find_file_groups(files, ["ipars1", "ipars2"], {})
        group, env = groups[0]
        strips = [s for f in group for s in f.strips]
        alignment = compute_alignment(strips, descriptor.index_attrs)
        afcs = enumerate_afcs(group, env, alignment, order, {})
        afc = afcs[3]  # TIME = 4
        assert afc.num_rows == 10
        coords_chunk, data_chunk = afc.chunks
        assert coords_chunk.offset == 0
        assert coords_chunk.bytes_per_row == 12
        assert data_chunk.offset == 3 * 10 * 8
        assert data_chunk.bytes_per_row == 8
        assert afc.constant_map["TIME"] == 4
        (grid,) = afc.inner_vars
        assert grid.count == 10 and grid.repeat == 1

    def test_implicit_columns(self, setup):
        descriptor, files, order = setup
        groups = find_file_groups(files, ["ipars1", "ipars2"], {})
        group, env = groups[0]
        strips = [s for f in group for s in f.strips]
        alignment = compute_alignment(strips, descriptor.index_attrs)
        afc = enumerate_afcs(group, env, alignment, order, {})[0]
        cols = afc.implicit_columns(["REL", "TIME", "GRID"])
        assert list(cols["REL"]) == [env["REL"]] * 10
        assert list(cols["TIME"]) == [1] * 10
        assert list(cols["GRID"]) == list(
            range(group[0].dir_index * 10 + 1, group[0].dir_index * 10 + 11)
        )

    def test_total_bytes(self, setup):
        descriptor, files, order = setup
        groups = find_file_groups(files, ["ipars1", "ipars2"], {})
        group, env = groups[0]
        strips = [s for f in group for s in f.strips]
        alignment = compute_alignment(strips, descriptor.index_attrs)
        afc = enumerate_afcs(group, env, alignment, order, {})[0]
        assert afc.total_bytes() == 10 * 12 + 10 * 8
