"""Tests for the code generator: generated index == interpreted index."""

import numpy as np
import pytest

from repro.core import CompiledDataset, GeneratedDataset, generate_index_source
from repro.core.codegen_runtime import allowed_values, ranges_match
from repro.sql import parse_where
from repro.sql.ranges import IntervalSet, extract_ranges
from tests.conftest import PAPER_DESCRIPTOR

QUERIES = [
    "SELECT * FROM IparsData",
    "SELECT * FROM IparsData WHERE TIME > 5 AND TIME <= 9",
    "SELECT * FROM IparsData WHERE REL IN (0, 2)",
    "SELECT X, SOIL FROM IparsData WHERE REL = 1 AND TIME BETWEEN 3 AND 7",
    "SELECT * FROM IparsData WHERE SOIL > 0.9",
    "SELECT * FROM IparsData WHERE TIME > 100",
    "SELECT * FROM IparsData WHERE SGAS < 0.3 AND TIME = 7",
]


@pytest.fixture(scope="module")
def both():
    return CompiledDataset(PAPER_DESCRIPTOR), GeneratedDataset(PAPER_DESCRIPTOR)


def afc_key(afc):
    """Order- and representation-insensitive identity of an AFC."""
    return (
        afc.num_rows,
        tuple((c.node, c.path, c.offset, c.bytes_per_row) for c in afc.chunks),
        tuple(sorted(afc.constants)),
        afc.inner_vars,
    )


class TestEquivalence:
    @pytest.mark.parametrize("query", QUERIES)
    def test_same_afcs(self, both, query):
        interpreted, generated = both
        plan_i = interpreted.plan(query)
        plan_g = generated.plan(query)
        assert sorted(map(afc_key, plan_i.afcs)) == sorted(
            map(afc_key, plan_g.afcs)
        )

    def test_same_afcs_for_empty_ranges(self, both):
        interpreted, generated = both
        assert sorted(map(afc_key, interpreted.index({}))) == sorted(
            map(afc_key, generated.index({}))
        )


class TestGeneratedSource:
    def test_source_is_python(self, both):
        _, generated = both
        compile(generated.source, "<test>", "exec")

    def test_source_has_one_function_per_group(self, both):
        interpreted, generated = both
        assert generated.source.count("def _group_") == len(interpreted.groups)

    def test_offsets_are_inlined_arithmetic(self, both):
        _, generated = both
        # The TIME-dependent chunk offset appears as inlined arithmetic.
        assert "(TIME - 1) * 80" in generated.source

    def test_loop_bounds_are_constants(self, both):
        _, generated = both
        assert "allowed_values(ranges.get('TIME'), 1, 20, 1)" in generated.source

    def test_source_written_to_path(self, tmp_path):
        path = tmp_path / "generated.py"
        GeneratedDataset(PAPER_DESCRIPTOR, source_path=str(path))
        text = path.read_text()
        assert "def index(ranges" in text

    def test_generate_source_function(self, both):
        interpreted, _ = both
        source = generate_index_source(interpreted)
        assert "DATASET_NAME = 'IparsData'" in source


class TestRuntimeHelpers:
    def test_allowed_values_no_constraint(self):
        assert allowed_values(None, 1, 10, 2) == [1, 3, 5, 7, 9]

    def test_allowed_values_filtered(self):
        allowed = IntervalSet.of(4, 8)
        assert allowed_values(allowed, 1, 10, 1) == [4, 5, 6, 7, 8]

    def test_allowed_values_pinned(self):
        assert allowed_values(None, 1, 10, 1, pin=7) == [7]
        assert allowed_values(None, 1, 10, 2, pin=8) == []  # off-lattice
        assert allowed_values(IntervalSet.of(0, 3), 1, 10, 1, pin=7) == []

    def test_ranges_match(self):
        ranges = extract_ranges(parse_where("T >= 5 AND T <= 6"))
        assert ranges_match(ranges, (("T", 1, 20),))
        assert not ranges_match(ranges, (("T", 10, 20),))
        assert ranges_match(ranges, (("OTHER", 0, 0),))
