"""Tests for the chunk extractor: I/O, caching, stats, failure modes."""

import os

import numpy as np
import pytest

from repro.core import CompiledDataset, Extractor, IOStats, local_mount
from repro.core.extractor import _SegmentCache
from repro.errors import ExtractionError
from tests.conftest import PAPER_DESCRIPTOR, paper_value_fn


def write_node_file(root, node, name, payload):
    """Write one raw file under a node directory; returns the payload."""
    node_dir = os.path.join(str(root), node)
    os.makedirs(node_dir, exist_ok=True)
    with open(os.path.join(node_dir, name), "wb") as handle:
        handle.write(payload)
    return payload


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    from repro.datasets.writers import write_dataset

    root = tmp_path_factory.mktemp("extractor")
    mount = local_mount(str(root))
    dataset = CompiledDataset(PAPER_DESCRIPTOR)
    write_dataset(dataset, mount, paper_value_fn)
    return dataset, mount, str(root)


class TestExecute:
    def test_full_scan_values(self, env):
        dataset, mount, _ = env
        with Extractor(mount) as extractor:
            table = extractor.execute(dataset.plan("SELECT * FROM IparsData"))
        assert table.num_rows == 4 * 4 * 20 * 10
        # Spot-check: X column equals the GRID id by construction.
        idx = table.sort_key()
        assert table["X"].min() == 1.0
        assert table["X"].max() == 40.0

    def test_predicate_filtering(self, env):
        dataset, mount, _ = env
        with Extractor(mount) as extractor:
            table = extractor.execute(
                dataset.plan("SELECT SOIL FROM IparsData WHERE SOIL > 0.75")
            )
        assert (table["SOIL"] > 0.75).all()

    def test_projection_order(self, env):
        dataset, mount, _ = env
        with Extractor(mount) as extractor:
            table = extractor.execute(
                dataset.plan("SELECT Z, REL, SOIL FROM IparsData WHERE TIME = 1")
            )
        assert table.column_names == ("Z", "REL", "SOIL")

    def test_implicit_dtype_matches_schema(self, env):
        dataset, mount, _ = env
        with Extractor(mount) as extractor:
            table = extractor.execute(
                dataset.plan("SELECT REL, TIME FROM IparsData WHERE TIME = 2")
            )
        assert table["REL"].dtype == np.dtype("<i2")
        assert table["TIME"].dtype == np.dtype("<i4")

    def test_empty_result_keeps_schema_dtypes(self, env):
        dataset, mount, _ = env
        with Extractor(mount) as extractor:
            table = extractor.execute(
                dataset.plan("SELECT X FROM IparsData WHERE TIME > 999")
            )
        assert table.num_rows == 0
        assert table["X"].dtype == np.dtype("<f4")

    def test_scalar_false_predicate(self, env):
        dataset, mount, _ = env
        with Extractor(mount) as extractor:
            table = extractor.execute(
                dataset.plan("SELECT X FROM IparsData WHERE FALSE")
            )
        assert table.num_rows == 0


class TestStats:
    def test_counts(self, env):
        dataset, mount, _ = env
        stats = IOStats()
        with Extractor(mount, segment_cache_bytes=0) as extractor:
            extractor.execute(dataset.plan("SELECT * FROM IparsData"), stats)
        assert stats.afcs_processed == 16 * 20
        assert stats.chunks_read == 16 * 20 * 2
        assert stats.rows_extracted == 3200
        assert stats.rows_output == 3200
        # Without the segment cache, each DATA chunk is read once but the
        # COORDS chunk is re-read by every AFC it participates in.
        data_bytes = 16 * 1600
        coords_bytes = 16 * 20 * 120
        assert stats.bytes_read == data_bytes + coords_bytes

    def test_sequential_reads_need_few_seeks(self, env):
        dataset, mount, _ = env
        stats = IOStats()
        with Extractor(mount, segment_cache_bytes=0) as extractor:
            extractor.execute(
                dataset.plan("SELECT SOIL FROM IparsData WHERE REL = 0"), stats
            )
        # Reading one DATA file beginning-to-end costs ~1 repositioning per
        # file, not one per chunk.
        assert stats.seeks <= 2 * 4 + 4

    def test_segment_cache_hits(self, env):
        dataset, mount, _ = env
        stats = IOStats()
        with Extractor(mount) as extractor:
            extractor.execute(dataset.plan("SELECT * FROM IparsData"), stats)
        assert stats.cache_hits > 0

    def test_drop_caches(self, env):
        dataset, mount, _ = env
        extractor = Extractor(mount)
        s1, s2, s3 = IOStats(), IOStats(), IOStats()
        plan = dataset.plan("SELECT X FROM IparsData WHERE TIME = 1")
        extractor.execute(plan, s1)
        extractor.execute(plan, s2)
        assert s2.bytes_read == 0  # fully cached
        extractor.drop_caches()
        extractor.execute(plan, s3)
        assert s3.bytes_read == s1.bytes_read
        extractor.close()


class TestFailures:
    def test_missing_file(self, env):
        dataset, _, root = env

        def broken_mount(node, path):
            return os.path.join(root, "nowhere", node, path)

        with Extractor(broken_mount) as extractor:
            with pytest.raises(ExtractionError, match="cannot open"):
                extractor.execute(dataset.plan("SELECT * FROM IparsData"))

    def test_short_read_reports_layout_mismatch(self, env, tmp_path):
        dataset, mount, root = env
        # Truncate a copy of the dataset.
        import shutil

        copy_root = tmp_path / "truncated"
        shutil.copytree(root, copy_root)
        victim = copy_root / "osu0" / "ipars" / "DATA0"
        with open(victim, "r+b") as handle:
            handle.truncate(100)
        with Extractor(local_mount(str(copy_root))) as extractor:
            with pytest.raises(ExtractionError, match="short read"):
                extractor.execute(dataset.plan("SELECT * FROM IparsData"))

    def test_failed_read_does_not_advance_head(self, tmp_path):
        """A short read must not move the simulated head to undelivered
        bytes: the next read from the last *successful* position is
        sequential and must stay seek-free."""
        write_node_file(tmp_path, "n", "f.bin", bytes(100))
        stats = IOStats()
        with Extractor(local_mount(tmp_path), segment_cache_bytes=0) as ex:
            ex.read_chunk("n", "f.bin", 0, 40, stats)
            assert stats.seeks == 1  # first read repositions from nowhere
            with pytest.raises(ExtractionError, match="short read"):
                ex.read_chunk("n", "f.bin", 40, 1000, stats)
            # Continue the sequential scan where the successful read left
            # off; with the phantom head at 1040 this would charge a seek.
            ex.read_chunk("n", "f.bin", 40, 20, stats)
        assert stats.seeks == 1

    def test_handle_cache_eviction(self, env):
        dataset, mount, _ = env
        stats = IOStats()
        # With a single handle, the COORDS/DATA alternation of every AFC
        # evicts and reopens constantly (the paper's many-files effect).
        with Extractor(mount, handle_cache=1, segment_cache_bytes=0) as ex:
            ex.execute(dataset.plan("SELECT * FROM IparsData"), stats)
        assert stats.files_opened > 20


class TestSegmentCache:
    def test_overwrite_does_not_double_count(self):
        cache = _SegmentCache(capacity_bytes=100)
        cache.put(("n", "f", 0, 40), b"x" * 40)
        cache.put(("n", "f", 0, 40), b"y" * 40)  # same key, re-inserted
        assert cache.size == 40

    def test_overwrite_does_not_starve_capacity(self):
        cache = _SegmentCache(capacity_bytes=100)
        for _ in range(3):
            cache.put(("n", "f", 0, 40), b"z" * 40)
        # A phantom size of 120 would evict entries that still fit.
        cache.put(("n", "g", 0, 30), b"a" * 30)
        cache.put(("n", "h", 0, 30), b"b" * 30)
        assert cache.size == 100
        assert cache.get(("n", "f", 0, 40)) is not None
        assert cache.get(("n", "g", 0, 30)) is not None
        assert cache.get(("n", "h", 0, 30)) is not None

    def test_eviction_still_honours_lru(self):
        cache = _SegmentCache(capacity_bytes=100)
        cache.put(("a",), b"1" * 40)
        cache.put(("b",), b"2" * 40)
        assert cache.get(("a",)) is not None  # refresh "a"
        cache.put(("c",), b"3" * 40)  # evicts "b", the least recent
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.get(("c",)) is not None


class TestResultOwnership:
    """Emitted columns must own their memory, never alias cache segments."""

    def _columns(self, env):
        from repro.storm.filtering import FilteringService

        dataset, mount, _ = env
        extractor = Extractor(mount)
        plan = dataset.plan("SELECT REL, TIME, X, SOIL FROM IparsData")
        stats = IOStats()
        afc = plan.afcs[0]
        raw = extractor.extract_afc(afc, plan.needed, stats, plan.dtypes)
        selected = FilteringService().apply(
            plan.where, raw, plan.output, afc.num_rows, stats
        )
        return extractor, selected

    def test_unfiltered_columns_are_writable(self, env):
        extractor, selected = self._columns(env)
        try:
            for name, column in selected.items():
                assert column.flags.writeable, name
                column[0] = column[0]  # mutation must not raise
        finally:
            extractor.close()

    def test_columns_do_not_alias_cache_segments(self, env):
        extractor, selected = self._columns(env)
        try:
            segments = [
                np.frombuffer(payload, dtype=np.uint8)
                for payload in extractor._segments._segments.values()
            ]
            assert segments
            for name, column in selected.items():
                for segment in segments:
                    assert not np.shares_memory(column, segment), name
        finally:
            extractor.close()

    def test_mutating_a_result_does_not_poison_the_cache(self, env):
        dataset, mount, _ = env
        plan = dataset.plan("SELECT SOIL FROM IparsData WHERE TIME = 1")
        with Extractor(mount) as extractor:
            first = extractor.execute(plan)
            first["SOIL"][:] = -1.0
            second = extractor.execute(plan)  # served from the segment cache
        assert not (second["SOIL"] == -1.0).any()


class TestCoalescing:
    """I/O coalescing: merged reads, gap windows, and their accounting."""

    def test_gap_merge_reads_and_accounting(self, tmp_path):
        blob = write_node_file(tmp_path, "n", "f", bytes(range(256)) * 500)
        reads = [("n", "f", 0, 100), ("n", "f", 150, 100), ("n", "f", 99_000, 100)]
        stats = IOStats()
        with Extractor(local_mount(tmp_path)) as ex:
            plan = ex.plan_coalesce(reads, gap_bytes=64)
            assert plan is not None
            assert plan.num_runs == 1 and plan.num_members == 2
            a = ex.read_chunk("n", "f", 0, 100, stats, coalesce=plan)
            b = ex.read_chunk("n", "f", 150, 100, stats, coalesce=plan)
            c = ex.read_chunk("n", "f", 99_000, 100, stats, coalesce=plan)
        assert a == blob[0:100]
        assert b == blob[150:250]
        assert c == blob[99_000:99_100]
        # One merged read for a+b, one plain read for the far-away c.
        assert stats.read_calls == 2
        assert stats.reads_coalesced == 1
        assert stats.readahead_waste_bytes == 50
        assert stats.cache_hits == 1  # b came out of the merged payload
        assert stats.bytes_read == 250 + 100  # merged span + c

    def test_gap_window_not_exceeded(self, tmp_path):
        write_node_file(tmp_path, "n", "f", bytes(1000))
        with Extractor(local_mount(tmp_path)) as ex:
            # Hole of 65 bytes > gap of 64: no run is formed.
            plan = ex.plan_coalesce(
                [("n", "f", 0, 100), ("n", "f", 165, 100)], gap_bytes=64
            )
        assert plan is None

    def test_zero_gap_disables_coalescing(self, tmp_path):
        write_node_file(tmp_path, "n", "f", bytes(1000))
        with Extractor(local_mount(tmp_path)) as ex:
            assert ex.plan_coalesce([("n", "f", 0, 10), ("n", "f", 10, 10)], 0) is None
            assert ex.plan_coalesce([("n", "f", 0, 10), ("n", "f", 10, 10)], -1) is None

    def test_max_run_bytes_bounds_merged_span(self, tmp_path):
        write_node_file(tmp_path, "n", "f", bytes(4000))
        reads = [("n", "f", i * 1000, 1000) for i in range(4)]
        with Extractor(local_mount(tmp_path)) as ex:
            plan = ex.plan_coalesce(reads, gap_bytes=1, max_run_bytes=2000)
        assert plan.num_runs == 2  # two runs of two chunks, not one of four

    def test_execute_with_coalescing_matches_plain(self, env):
        dataset, mount, _ = env
        plan = dataset.plan("SELECT REL, TIME, X, SOIL FROM IparsData")
        plain_stats, coal_stats = IOStats(), IOStats()
        with Extractor(mount, segment_cache_bytes=0) as ex:
            plain = ex.execute(plan, plain_stats)
        with Extractor(mount) as ex:
            coalesced = ex.execute(plan, coal_stats, coalesce_gap_bytes=64 * 1024)
        assert plain.num_rows == coalesced.num_rows
        for name in plain.column_names:
            np.testing.assert_array_equal(plain[name], coalesced[name])
        assert coal_stats.read_calls < plain_stats.read_calls
        assert coal_stats.reads_coalesced > 0

    def test_coalesced_chunks_survive_without_segment_cache(self, tmp_path):
        """With a zero-byte cache the merged slices can't be parked; the
        consumed-on-pop path and the plain-read fallback still return
        correct bytes for every chunk — twice."""
        blob = write_node_file(tmp_path, "n", "f", bytes(range(200)))
        reads = [("n", "f", 0, 50), ("n", "f", 50, 50)]
        stats = IOStats()
        with Extractor(local_mount(tmp_path), segment_cache_bytes=0) as ex:
            plan = ex.plan_coalesce(reads, gap_bytes=8)
            for _ in range(2):
                assert ex.read_chunk("n", "f", 0, 50, stats, coalesce=plan) == blob[:50]
                assert (
                    ex.read_chunk("n", "f", 50, 50, stats, coalesce=plan)
                    == blob[50:100]
                )

    def test_coalesced_read_counts_into_tracer_metrics(self, tmp_path):
        from repro.obs import Tracer

        write_node_file(tmp_path, "n", "f", bytes(1000))
        tracer = Tracer()
        stats = IOStats()
        with Extractor(local_mount(tmp_path)) as ex:
            plan = ex.plan_coalesce([("n", "f", 0, 100), ("n", "f", 130, 100)], 64)
            ex.read_chunk("n", "f", 0, 100, stats, tracer, plan)
        counters = tracer.metrics.as_dict()["counters"]
        assert counters["reads.coalesced"] == 1
        assert counters["bytes.readahead_waste"] == 30
