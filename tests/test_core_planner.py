"""Tests for CompiledDataset: group construction and query planning."""

import numpy as np
import pytest

from repro.core import CompiledDataset
from repro.errors import PlanningError, QueryValidationError
from repro.metadata import parse_descriptor
from tests.conftest import PAPER_DESCRIPTOR


@pytest.fixture(scope="module")
def dataset():
    return CompiledDataset(PAPER_DESCRIPTOR)


class TestCompile:
    def test_static_groups(self, dataset):
        assert len(dataset.groups) == 16
        for group in dataset.groups:
            assert len(group.files) == 2
            assert group.alignment.inner_vars == ("GRID",)

    def test_row_var_order(self, dataset):
        assert dataset.row_var_order == ["GRID", "TIME"]

    def test_index_attrs(self, dataset):
        assert dataset.index_attrs == ("REL", "TIME")
        assert dataset.stored_index_attrs == ()

    def test_total_data_bytes(self, dataset):
        # 4 coords files of 120B + 16 data files of 1600B
        assert dataset.total_data_bytes == 4 * 120 + 16 * 1600

    def test_accepts_descriptor_object(self):
        d = parse_descriptor(PAPER_DESCRIPTOR)
        assert CompiledDataset(d).descriptor is d


class TestPlan:
    def test_full_scan(self, dataset):
        plan = dataset.plan("SELECT * FROM IparsData")
        assert len(plan.afcs) == 16 * 20
        assert plan.planned_rows == 16 * 20 * 10
        assert plan.output == list(dataset.schema.names)

    def test_projection_and_needed(self, dataset):
        plan = dataset.plan("SELECT X FROM IparsData WHERE SOIL > 0.5")
        assert plan.output == ["X"]
        assert plan.needed == ["X", "SOIL"]

    def test_time_pruning(self, dataset):
        plan = dataset.plan(
            "SELECT * FROM IparsData WHERE TIME > 5 AND TIME <= 9"
        )
        assert len(plan.afcs) == 16 * 4

    def test_rel_pruning(self, dataset):
        plan = dataset.plan("SELECT * FROM IparsData WHERE REL = 2")
        assert len(plan.afcs) == 4 * 20

    def test_unsatisfiable(self, dataset):
        plan = dataset.plan("SELECT * FROM IparsData WHERE TIME > 9 AND TIME < 5")
        assert plan.afcs == []

    def test_wrong_table(self, dataset):
        with pytest.raises(QueryValidationError, match="targets table"):
            dataset.plan("SELECT * FROM Wrong")

    def test_unknown_select_column(self, dataset):
        with pytest.raises(QueryValidationError):
            dataset.plan("SELECT GHOST FROM IparsData")

    def test_unknown_where_column(self, dataset):
        with pytest.raises(QueryValidationError, match="GHOST"):
            dataset.plan("SELECT * FROM IparsData WHERE GHOST < 1")

    def test_plan_dtypes(self, dataset):
        plan = dataset.plan("SELECT * FROM IparsData")
        assert plan.dtypes["REL"] == np.dtype("<i2")
        assert plan.dtypes["SOIL"] == np.dtype("<f4")

    def test_explain_mentions_counts(self, dataset):
        text = dataset.explain("SELECT * FROM IparsData WHERE REL = 0")
        assert "AFCs planned: 80" in text


class TestGroupJoin:
    def test_many_leaves_do_not_explode(self):
        """An 18-leaf L0-style descriptor must build groups via the
        incremental join, not a 16^18 cartesian product."""
        from repro.datasets import IparsConfig, ipars

        config = IparsConfig(num_rels=4, num_times=5, cells_per_node=10,
                             num_nodes=4)
        text = ipars.descriptor_text(config, "L0")
        dataset = CompiledDataset(text)
        assert len(dataset.groups) == 16  # 4 dirs x 4 rels
        for group in dataset.groups:
            assert len(group.files) == 18

    def test_inconsistent_shared_loops_rejected(self):
        text = """
[S]
T = int
A = float
B = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATA { DATASET a DATASET b }
  DATASET "a" { DATASPACE { LOOP T 1:10:1 { A } } DATA { DIR[0]/fa } }
  DATASET "b" { DATASPACE { LOOP T 1:20:1 { B } } DATA { DIR[0]/fb } }
}
"""
        with pytest.raises(PlanningError, match="no consistent"):
            CompiledDataset(text + "\n")

    def test_binding_pins_loop_variable(self):
        """A variable that is a binding constant in one leaf and a loop in
        another pins the chunk enumeration to the constant."""
        text = """
[S]
T = int
A = float
B = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATA { DATASET a DATASET b }
  DATASET "a" {
    DATASPACE { LOOP T 1:10:1 { LOOP G 1:5:1 { A } } }
    DATA { DIR[0]/fa }
  }
  DATASET "b" {
    DATASPACE { LOOP G 1:5:1 { B } }
    DATA { DIR[0]/fb$T T = 3:3:1 }
  }
}
"""
        dataset = CompiledDataset(text)
        plan = dataset.plan("SELECT * FROM D")
        # Only T=3 rows exist: B is only stored for T=3.
        assert plan.planned_rows == 5
        assert plan.afcs[0].constant_map["T"] == 3
