"""Tests for aligned-chunk splitting (the chunk-granularity cap)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompiledDataset, Extractor, Virtualizer, local_mount
from repro.core.afc import AlignedFileChunkSet, ChunkRef, InnerVar, split_afc
from repro.core.strips import LoopDim, Strip
from tests.conftest import PAPER_DESCRIPTOR, assert_tables_equal


def make_afc(counts, record_size=4, base_offset=0):
    """An AFC with a chain of inner vars of the given counts."""
    inner = []
    repeat = 1
    for i, count in enumerate(reversed(counts)):
        inner.append(InnerVar(f"V{len(counts) - 1 - i}", 0, 1, count, repeat))
        repeat *= count
    inner.reverse()
    num_rows = repeat
    strip = Strip(
        leaf_name="leaf",
        strip_index=0,
        attrs=("A",),
        attr_offsets=(0,),
        attr_formats=("<f4",),
        record_size=record_size,
        base_offset=0,
        dims=(),
    )
    return AlignedFileChunkSet(
        num_rows=num_rows,
        chunks=(ChunkRef("n", "f", base_offset, record_size, strip),),
        constants=(("C", 9),),
        inner_vars=tuple(inner),
    )


class TestSplitAfc:
    def test_no_split_needed(self):
        afc = make_afc([4])
        assert split_afc(afc, 10) == [afc]

    def test_split_outer_var(self):
        afc = make_afc([6, 2])  # 12 rows
        pieces = split_afc(afc, 4)
        assert [p.num_rows for p in pieces] == [4, 4, 4]
        # Offsets advance contiguously.
        assert [p.chunks[0].offset for p in pieces] == [0, 16, 32]
        # The outer var's segments partition its range.
        starts = [p.inner_vars[0].start for p in pieces]
        assert starts == [0, 2, 4]

    def test_uneven_tail(self):
        afc = make_afc([5])
        pieces = split_afc(afc, 2)
        assert [p.num_rows for p in pieces] == [2, 2, 1]

    def test_recursive_split_pins_outer(self):
        afc = make_afc([3, 10])  # each outer value = 10 rows > cap
        pieces = split_afc(afc, 5)
        assert all(p.num_rows == 5 for p in pieces)
        assert len(pieces) == 6
        # The outer var became a constant on each piece.
        assert all("V0" in p.constant_map for p in pieces)

    def test_implicit_values_preserved(self):
        afc = make_afc([4, 3])
        pieces = split_afc(afc, 3)
        original = set()
        for i in range(afc.num_rows):
            cols = afc.implicit_columns(["V0", "V1"])
            original.add((int(cols["V0"][i]), int(cols["V1"][i])))
        recovered = set()
        for p in pieces:
            cols = p.implicit_columns(["V0", "V1"])
            for i in range(p.num_rows):
                recovered.add((int(cols["V0"][i]), int(cols["V1"][i])))
        assert recovered == original

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            split_afc(make_afc([2]), 0)


@given(
    st.lists(st.integers(1, 5), min_size=1, max_size=3),
    st.integers(1, 30),
)
@settings(max_examples=150, deadline=None)
def test_split_partitions_rows_exactly(counts, cap):
    afc = make_afc(counts)
    pieces = split_afc(afc, cap)
    assert sum(p.num_rows for p in pieces) == afc.num_rows
    assert all(p.num_rows <= cap for p in pieces)
    # Bytes covered are exactly the original chunk, contiguously.
    spans = sorted(
        (p.chunks[0].offset, p.chunks[0].offset + p.num_rows * 4)
        for p in pieces
    )
    assert spans[0][0] == afc.chunks[0].offset
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert end == start
    assert spans[-1][1] == afc.chunks[0].offset + afc.num_rows * 4


class TestPlannerIntegration:
    def test_capped_plan_equals_uncapped(self, paper_dataset):
        text, mount = paper_dataset
        plain = Virtualizer(text, mount)
        capped = Virtualizer(text, mount)
        capped.dataset.chunk_row_cap = 3
        for sql in [
            "SELECT * FROM IparsData WHERE TIME <= 4",
            "SELECT X, SOIL FROM IparsData WHERE SOIL > 0.5 AND REL = 1",
        ]:
            a = plain.query(sql)
            b = capped.query(sql)
            assert_tables_equal(a, b)
            plan_a = plain.plan(sql)
            plan_b = capped.plan(sql)
            assert all(afc.num_rows <= 3 for afc in plan_b.afcs)
            assert len(plan_b.afcs) > len(plan_a.afcs)
        plain.close()
        capped.close()

    def test_constructor_parameter(self, paper_dataset):
        text, mount = paper_dataset
        dataset = CompiledDataset(text, chunk_row_cap=5)
        plan = dataset.plan("SELECT * FROM IparsData WHERE TIME = 1")
        assert all(afc.num_rows <= 5 for afc in plan.afcs)
