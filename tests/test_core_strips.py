"""Tests for dataspace linearisation (strips) and file enumeration."""

import numpy as np
import pytest

from repro.metadata import parse_descriptor
from repro.core.strips import (
    build_strips,
    enumerate_files,
    row_variable_order,
)
from tests.conftest import PAPER_DESCRIPTOR


@pytest.fixture(scope="module")
def descriptor():
    return parse_descriptor(PAPER_DESCRIPTOR)


@pytest.fixture(scope="module")
def files(descriptor):
    return enumerate_files(descriptor)


class TestEnumerateFiles:
    def test_counts(self, files):
        coords = [f for f in files if f.leaf_name == "ipars1"]
        data = [f for f in files if f.leaf_name == "ipars2"]
        assert len(coords) == 4  # one per directory
        assert len(data) == 16  # 4 REL x 4 DIRID

    def test_paths_and_nodes(self, files):
        coords = [f for f in files if f.leaf_name == "ipars1"]
        assert {f.relpath for f in coords} == {"ipars/COORDS"}
        assert {f.node for f in coords} == {"osu0", "osu1", "osu2", "osu3"}
        data = [f for f in files if f.leaf_name == "ipars2"]
        names = {f.relpath.split("/")[-1] for f in data}
        assert names == {"DATA0", "DATA1", "DATA2", "DATA3"}

    def test_file_sizes(self, files):
        for f in files:
            if f.leaf_name == "ipars1":
                assert f.expected_size == 10 * 12  # 10 cells x (X,Y,Z) floats
            else:
                assert f.expected_size == 20 * 10 * 8  # times x cells x 2 floats

    def test_implicit_intervals(self, files):
        data = next(
            f for f in files
            if f.leaf_name == "ipars2" and f.env == {"REL": 2, "DIRID": 1}
        )
        implicit = data.implicit_intervals()
        assert implicit["REL"].lo == implicit["REL"].hi == 2
        assert (implicit["TIME"].lo, implicit["TIME"].hi) == (1, 20)
        assert (implicit["GRID"].lo, implicit["GRID"].hi) == (11, 20)

    def test_enumeration_order_deterministic(self, descriptor):
        a = [str(f) for f in enumerate_files(descriptor)]
        b = [str(f) for f in enumerate_files(descriptor)]
        assert a == b


class TestStripGeometry:
    def test_coords_strip(self, descriptor):
        leaf = descriptor.leaves()[0]
        strips, size = build_strips(leaf, descriptor.schema, {"DIRID": 2})
        assert size == 120
        (strip,) = strips
        assert strip.attrs == ("X", "Y", "Z")
        assert strip.record_size == 12
        assert strip.attr_offsets == (0, 4, 8)
        (grid,) = strip.dims
        assert (grid.start, grid.stop, grid.step) == (21, 30, 1)
        assert grid.byte_stride == 12

    def test_data_strip(self, descriptor):
        leaf = descriptor.leaves()[1]
        strips, size = build_strips(
            leaf, descriptor.schema, {"REL": 0, "DIRID": 0}
        )
        (strip,) = strips
        assert strip.attrs == ("SOIL", "SGAS")
        assert strip.record_size == 8
        time_dim, grid_dim = strip.dims
        assert time_dim.var == "TIME"
        assert time_dim.byte_stride == 10 * 8  # one time-step of 10 records
        assert grid_dim.byte_stride == 8
        assert size == 20 * 10 * 8

    def test_offset_of(self, descriptor):
        leaf = descriptor.leaves()[1]
        strips, _ = build_strips(leaf, descriptor.schema, {"REL": 0, "DIRID": 0})
        strip = strips[0]
        # TIME ordinal 3, GRID ordinal 4 -> 3*80 + 4*8
        assert strip.offset_of({"TIME": 3, "GRID": 4}) == 3 * 80 + 4 * 8

    def test_dense_suffix(self, descriptor):
        leaf = descriptor.leaves()[1]
        strips, _ = build_strips(leaf, descriptor.schema, {"REL": 0, "DIRID": 0})
        # Single strip file: fully dense (both loops contiguous).
        assert strips[0].dense_suffix_length() == 2

    def test_record_dtype_projection(self, descriptor):
        leaf = descriptor.leaves()[1]
        strips, _ = build_strips(leaf, descriptor.schema, {"REL": 0, "DIRID": 0})
        dtype = strips[0].record_dtype(["SGAS"])
        assert dtype.itemsize == 8  # full record, SOIL as padding
        assert dtype.names == ("SGAS",)
        assert dtype.fields["SGAS"][1] == 4

    def test_num_records(self, descriptor):
        leaf = descriptor.leaves()[1]
        strips, _ = build_strips(leaf, descriptor.schema, {"REL": 0, "DIRID": 0})
        assert strips[0].num_records == 200
        assert strips[0].total_bytes == 1600


class TestVariableAsArrayStrips:
    TEXT = """
[S]
T = int
A = float
B = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATASPACE {
    LOOP T 1:3:1 {
      LOOP G 0:4:1 { A }
      LOOP G 0:4:1 { B }
    }
  }
  DATA { DIR[0]/f }
}
"""

    def test_two_strips_one_file(self):
        d = parse_descriptor(self.TEXT)
        (file,) = enumerate_files(d)
        assert len(file.strips) == 2
        a, b = file.strips
        assert a.attrs == ("A",)
        assert b.attrs == ("B",)
        # Within one T iteration: 5 A's then 5 B's.
        assert a.base_offset == 0
        assert b.base_offset == 20
        assert a.dims[0].byte_stride == 40  # full T block
        assert a.dims[1].byte_stride == 4
        # The G loop is dense per strip, the T loop is not (interleaved).
        assert a.dense_suffix_length() == 1

    def test_row_variable_order(self):
        d = parse_descriptor(self.TEXT)
        assert row_variable_order(d) == ["T", "G"]


class TestSequentialSegments:
    TEXT = """
[S]
H = int
A = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATASPACE {
    H
    LOOP G 0:9:1 { A }
  }
  DATA { DIR[0]/f }
}
"""

    def test_header_then_array(self):
        d = parse_descriptor(self.TEXT)
        (file,) = enumerate_files(d)
        header, array = file.strips
        assert header.attrs == ("H",)
        assert header.dims == ()
        assert header.num_records == 1
        assert array.base_offset == 4
        assert file.expected_size == 4 + 40
