"""Tests for the VirtualTable result abstraction."""

import numpy as np
import pytest

from repro.core.table import VirtualTable, concat_tables, empty_table
from repro.errors import ReproError


@pytest.fixture
def table():
    return VirtualTable(
        {
            "A": np.array([3, 1, 2]),
            "B": np.array([30.0, 10.0, 20.0]),
        },
        order=["A", "B"],
    )


class TestBasics:
    def test_shape(self, table):
        assert table.num_rows == 3
        assert len(table) == 3
        assert table.column_names == ("A", "B")
        assert bool(table)

    def test_column_access(self, table):
        np.testing.assert_array_equal(table["A"], [3, 1, 2])
        with pytest.raises(ReproError, match="no column"):
            table.column("C")

    def test_rows_iteration(self, table):
        assert list(table.rows()) == [(3, 30.0), (1, 10.0), (2, 20.0)]

    def test_head(self, table):
        assert table.head(2) == [(3, 30.0), (1, 10.0)]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError, match="expected"):
            VirtualTable({"A": np.arange(3), "B": np.arange(4)})

    def test_empty(self):
        t = VirtualTable({})
        assert t.num_rows == 0
        assert not t

    def test_order_selects_and_orders_columns(self):
        t = VirtualTable(
            {"A": np.arange(2), "B": np.arange(2), "C": np.arange(2)},
            order=["C", "A"],
        )
        assert t.column_names == ("C", "A")


class TestCanonical:
    def test_canonical_sorts_rows(self, table):
        c = table.canonical()
        np.testing.assert_array_equal(c["A"], [1, 2, 3])
        np.testing.assert_array_equal(c["B"], [10.0, 20.0, 30.0])

    def test_canonical_ties_break_on_later_columns(self):
        t = VirtualTable(
            {"A": np.array([1, 1, 0]), "B": np.array([5.0, 2.0, 9.0])},
            order=["A", "B"],
        )
        c = t.canonical()
        assert list(c["A"]) == [0, 1, 1]
        assert list(c["B"]) == [9.0, 2.0, 5.0]


class TestStructured:
    def test_to_structured(self, table):
        s = table.to_structured()
        assert s.dtype.names == ("A", "B")
        assert s["A"][0] == 3

    def test_roundtrip(self, table):
        s = table.to_structured()
        t2 = VirtualTable({n: s[n] for n in s.dtype.names})
        np.testing.assert_array_equal(t2["B"], table["B"])


class TestConcat:
    def test_concat(self, table):
        joined = concat_tables([table, table])
        assert joined.num_rows == 6
        assert joined.column_names == ("A", "B")

    def test_concat_empty_list(self):
        assert concat_tables([]).num_rows == 0

    def test_concat_mismatched_columns(self, table):
        other = VirtualTable({"A": np.arange(1)})
        with pytest.raises(ReproError, match="cannot concatenate"):
            concat_tables([table, other])

    def test_empty_table_helper(self):
        t = empty_table(["X"], {"X": np.dtype("<f4")})
        assert t.num_rows == 0
        assert t["X"].dtype == np.dtype("<f4")
