"""End-to-end tests for the Virtualizer facade, checked against brute force."""

import numpy as np
import pytest

from repro.core import Virtualizer
from repro.datasets.writers import hash01
from tests.conftest import (
    PAPER_DESCRIPTOR,
    assert_tables_equal,
    paper_rows,
)


@pytest.fixture(scope="module")
def virtualizers(paper_dataset):
    text, mount = paper_dataset
    generated = Virtualizer(text, mount, use_codegen=True)
    interpreted = Virtualizer(text, mount, use_codegen=False)
    yield generated, interpreted
    generated.close()
    interpreted.close()


def brute_force(predicate=None, select=None):
    """Materialise the expected table with plain Python loops."""
    out = {name: [] for name in
           (select or ["REL", "TIME", "X", "Y", "Z", "SOIL", "SGAS"])}
    for rel, t, g in paper_rows():
        key = (rel * 1000 + t) * 10000 + g
        row = {
            "REL": rel, "TIME": t,
            "X": np.float32(g * 1.0), "Y": np.float32(g * 2.0),
            "Z": np.float32(g * 3.0),
            "SOIL": np.float32(hash01(np.array([key]), 1)[0]),
            "SGAS": np.float32(hash01(np.array([key]), 2)[0]),
        }
        if predicate is None or predicate(row):
            for name in out:
                out[name].append(row[name])
    return out


class TestCorrectness:
    def test_full_scan_row_count(self, virtualizers):
        generated, _ = virtualizers
        table = generated.query("SELECT * FROM IparsData")
        assert table.num_rows == len(paper_rows())

    def test_generated_equals_interpreted(self, virtualizers):
        generated, interpreted = virtualizers
        for sql in [
            "SELECT * FROM IparsData",
            "SELECT X, SOIL FROM IparsData WHERE TIME > 5 AND SOIL > 0.4",
            "SELECT * FROM IparsData WHERE REL IN (1, 3) AND SGAS < 0.2",
            "SELECT REL FROM IparsData WHERE SPEED(X, Y, Z) < 40",
        ]:
            assert_tables_equal(
                generated.query(sql), interpreted.query(sql)
            )

    def test_range_query_against_brute_force(self, virtualizers):
        generated, _ = virtualizers
        table = generated.query(
            "SELECT REL, TIME, SOIL FROM IparsData "
            "WHERE REL = 2 AND TIME >= 3 AND TIME <= 5 AND SOIL > 0.5"
        ).canonical()
        expected = brute_force(
            predicate=lambda r: r["REL"] == 2 and 3 <= r["TIME"] <= 5
            and r["SOIL"] > 0.5,
            select=["REL", "TIME", "SOIL"],
        )
        assert table.num_rows == len(expected["REL"])
        order = np.lexsort(
            (expected["SOIL"], expected["TIME"], expected["REL"])
        )
        for name in ("REL", "TIME", "SOIL"):
            np.testing.assert_array_almost_equal(
                table[name], np.array(expected[name])[order]
            )

    def test_udf_filter_against_brute_force(self, virtualizers):
        generated, _ = virtualizers
        table = generated.query(
            "SELECT X FROM IparsData WHERE DISTANCE(X, Y, Z) < 30 AND TIME = 1"
        )
        expected = brute_force(
            predicate=lambda r: np.sqrt(
                float(r["X"]) ** 2 + float(r["Y"]) ** 2 + float(r["Z"]) ** 2
            ) < 30 and r["TIME"] == 1,
            select=["X"],
        )
        assert table.num_rows == len(expected["X"])

    def test_duplicate_rows_preserved(self, virtualizers):
        """SELECT X without DISTINCT returns one row per (REL, TIME, cell)."""
        generated, _ = virtualizers
        table = generated.query("SELECT X FROM IparsData WHERE TIME <= 2")
        # 40 cells x 4 rels x 2 times
        assert table.num_rows == 40 * 4 * 2


class TestFacade:
    def test_explain(self, virtualizers):
        generated, _ = virtualizers
        assert "AFCs planned" in generated.explain("SELECT * FROM IparsData")

    def test_generated_source_exposed(self, virtualizers):
        generated, interpreted = virtualizers
        assert "def index" in generated.generated_source
        assert interpreted.generated_source is None

    def test_schema_property(self, virtualizers):
        generated, _ = virtualizers
        assert generated.schema.names[0] == "REL"

    def test_stats_accumulate(self, paper_dataset):
        text, mount = paper_dataset
        with Virtualizer(text, mount) as v:
            v.query("SELECT X FROM IparsData WHERE TIME = 1")
            assert v.stats.rows_output > 0

    def test_context_manager(self, paper_dataset):
        text, mount = paper_dataset
        with Virtualizer(text, mount) as v:
            v.query("SELECT X FROM IparsData WHERE TIME = 1")

    def test_open_dataset_helper(self, paper_dataset, tmp_path):
        import shutil
        from repro.core import open_dataset

        text, mount = paper_dataset
        src_root = mount("", "")[:-1].rstrip("/")
        # the session root is the parent of the node dirs
        root = mount("", "").rstrip("/")
        v = open_dataset(text, root)
        assert v.query("SELECT X FROM IparsData WHERE TIME = 1").num_rows == 160
        v.close()
