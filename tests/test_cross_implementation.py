"""Cross-implementation oracle: virtualizer vs row store on random queries.

The strongest end-to-end property in the suite: hypothesis generates
arbitrary WHERE clauses over the paper-example dataset, and the
flat-file virtualization (generated code path) must return exactly the
same row multiset as the loaded relational row store — two storage
engines, two planners, one answer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import MiniRowStore
from repro.core import ExecOptions, Virtualizer

ATTR_DOMAINS = {
    "REL": (0, 3),
    "TIME": (1, 20),
    "X": (1, 40),
    "SOIL": (0, 1),
    "SGAS": (0, 1),
}


@st.composite
def where_clauses(draw, depth=0):
    if depth >= 2 or draw(st.integers(0, 2)) == 0:
        attr = draw(st.sampled_from(sorted(ATTR_DOMAINS)))
        lo, hi = ATTR_DOMAINS[attr]
        kind = draw(st.integers(0, 2))
        if kind == 0:
            op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
            if attr in ("SOIL", "SGAS"):
                value = round(draw(st.floats(lo, hi)), 3)
            else:
                value = draw(st.integers(lo, hi))
            return f"{attr} {op} {value}"
        if kind == 1:
            a = draw(st.integers(lo, hi))
            b = a + draw(st.integers(0, max(1, (hi - lo) // 2)))
            return f"{attr} BETWEEN {a} AND {b}"
        values = draw(
            st.lists(st.integers(lo, hi), min_size=1, max_size=4)
        )
        return f"{attr} IN ({', '.join(map(str, values))})"
    op = draw(st.sampled_from(["AND", "OR"]))
    left = draw(where_clauses(depth + 1))
    right = draw(where_clauses(depth + 1))
    clause = f"({left}) {op} ({right})"
    if draw(st.booleans()):
        clause = f"NOT ({clause})"
    return clause


@pytest.fixture(scope="module")
def engines(paper_dataset, tmp_path_factory):
    text, mount = paper_dataset
    v = Virtualizer(text, mount)
    store = MiniRowStore(str(tmp_path_factory.mktemp("xstore")))
    store.create_table(
        "IparsData", v.query("SELECT * FROM IparsData"), indexes=["TIME", "SOIL"]
    )
    yield v, store
    v.close()


@given(where_clauses())
@settings(max_examples=60, deadline=None)
def test_rowstore_and_virtualizer_agree(engines, where):
    v, store = engines
    sql = f"SELECT REL, TIME, SOIL FROM IparsData WHERE {where}"
    a = v.query(sql).canonical()
    b = store.query(sql).canonical()
    assert a.num_rows == b.num_rows, sql
    for name in a.column_names:
        np.testing.assert_allclose(
            a[name].astype(np.float64),
            b[name].astype(np.float64),
            rtol=1e-6,
            err_msg=sql,
        )


@given(where_clauses())
@settings(max_examples=40, deadline=None)
def test_streaming_agrees_with_batch(engines, where):
    from repro.core.table import concat_tables

    v, _ = engines
    sql = f"SELECT TIME, SGAS FROM IparsData WHERE {where}"
    whole = v.query(sql).canonical()
    streamed = concat_tables(list(v.query_iter(sql, options=ExecOptions(batch_rows=64))))
    assert streamed.num_rows == whole.num_rows
    if whole.num_rows:
        c = streamed.canonical()
        for name in whole.column_names:
            np.testing.assert_array_equal(c[name], whole[name])
