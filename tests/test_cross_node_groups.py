"""Cross-node file groups: coordinates on one node, data on another.

Declustering usually co-locates the files of a group on one node, but the
layout language does not require it.  When a group spans nodes, the
processing node pulls the remote chunks over the interconnect; the stats
and cost model must account for that.
"""

import numpy as np
import pytest

from repro.core import (
    CompiledDataset,
    ExecOptions,
    GeneratedDataset,
    local_mount,
)
from repro.datasets.writers import write_dataset
from repro.storm import QueryService, VirtualCluster
from repro.storm.cost import STORM_COST

SPLIT_TEXT = """
[S]
T = int
POS = float
VAL = float

[D]
DatasetDescription = S
DIR[0] = alpha/d
DIR[1] = beta/d

DATASET "D" {
  DATAINDEX { T }
  DATA { DATASET coords DATASET values }
  DATASET "coords" {
    DATASPACE { LOOP G 1:10:1 { POS } }
    DATA { DIR[0]/coords.bin }
  }
  DATASET "values" {
    DATASPACE { LOOP T 1:8:1 { LOOP G 1:10:1 { VAL } } }
    DATA { DIR[1]/values.bin }
  }
}
"""


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    root = tmp_path_factory.mktemp("crossnode")
    cluster = VirtualCluster(str(root), ["alpha", "beta"])
    for node in cluster.nodes.values():
        node.ensure_dir()
    dataset = GeneratedDataset(SPLIT_TEXT)

    def value_fn(attr, env, coords):
        if attr == "POS":
            return coords["G"] * 1.0
        return coords["T"] * 100.0 + coords["G"]

    write_dataset(CompiledDataset(SPLIT_TEXT), cluster.mount(), value_fn)
    service = QueryService(dataset, cluster)
    yield cluster, dataset, service
    service.close()


class TestCrossNodeGroups:
    def test_group_spans_nodes(self, env):
        _, dataset, _ = env
        (group,) = dataset.groups
        nodes = {f.node for f in group.files}
        assert nodes == {"alpha", "beta"}

    def test_results_are_correct(self, env):
        _, _, service = env
        result = service.submit(
            "SELECT T, POS, VAL FROM D WHERE T = 5",
            ExecOptions(remote=False),
        )
        assert result.num_rows == 10
        np.testing.assert_allclose(
            np.sort(result.table["VAL"]), 500 + np.arange(1, 11)
        )

    def test_remote_bytes_counted(self, env):
        _, _, service = env
        service.drop_caches()
        result = service.submit("SELECT POS, VAL FROM D", ExecOptions(remote=False))
        stats = result.total_stats
        # The AFC is processed on the coords node (first chunk); the VAL
        # chunks (8 x 10 x 4 bytes) are remote.
        assert stats.remote_bytes_read == 8 * 10 * 4
        # Local + remote bytes both appear in bytes_read (they are read).
        assert stats.bytes_read >= stats.remote_bytes_read

    def test_remote_reads_cost_network_time(self, env):
        _, _, service = env
        service.drop_caches()
        result = service.submit("SELECT POS, VAL FROM D", ExecOptions(remote=False))
        stats = result.total_stats
        local_only = type(stats)()
        local_only.merge(stats)
        local_only.remote_bytes_read = 0
        assert STORM_COST.node_time(stats) > STORM_COST.node_time(local_only)

    def test_projection_avoids_remote_reads(self, env):
        _, _, service = env
        service.drop_caches()
        result = service.submit("SELECT POS FROM D WHERE T = 1", ExecOptions(remote=False))
        assert result.total_stats.remote_bytes_read == 0
