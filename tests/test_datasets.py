"""Tests for the IPARS / Titan generators and the descriptor-driven writer."""

import os

import numpy as np
import pytest

from repro.core import CompiledDataset, Virtualizer, local_mount
from repro.datasets import (
    ALL_LAYOUTS,
    IparsConfig,
    STATE_VARS,
    TitanConfig,
    hash01,
    ipars,
    titan,
    write_dataset,
)
from repro.errors import ReproError
from tests.conftest import assert_tables_equal


class TestHash01:
    def test_deterministic(self):
        a = hash01(np.arange(100), 7)
        b = hash01(np.arange(100), 7)
        np.testing.assert_array_equal(a, b)

    def test_salt_changes_values(self):
        a = hash01(np.arange(100), 1)
        b = hash01(np.arange(100), 2)
        assert not np.array_equal(a, b)

    def test_range(self):
        values = hash01(np.arange(10000), 3)
        assert values.min() >= 0.0
        assert values.max() < 1.0

    def test_roughly_uniform(self):
        values = hash01(np.arange(100000), 5)
        hist, _ = np.histogram(values, bins=10, range=(0, 1))
        assert hist.min() > 8500 and hist.max() < 11500


class TestIparsGenerator:
    def test_seventeen_state_variables(self):
        assert len(STATE_VARS) == 17

    def test_schema_has_all_columns(self):
        config = IparsConfig()
        text = ipars.descriptor_text(config, "I")
        dataset = CompiledDataset(text)
        assert len(dataset.schema) == 2 + 3 + 17

    def test_file_counts_per_layout(self, tmp_path):
        config = IparsConfig(num_rels=2, num_times=4, cells_per_node=10,
                             num_nodes=2)
        expected_files = {
            "L0": 2 * (1 + 17 * 2),  # per node: coords + var x rel
            "I": 2,
            "II": 2,
            "III": 2 * 2 * 4,
            "IV": 2 * 2 * 4,
            "V": 2 * 7,
            "VI": 2 * 7,
        }
        for layout, count in expected_files.items():
            dataset = CompiledDataset(ipars.descriptor_text(config, layout))
            assert len(dataset.files) == count, layout

    def test_unknown_layout(self):
        with pytest.raises(ReproError, match="unknown IPARS layout"):
            ipars.layout_text(IparsConfig(), "VII")

    def test_value_scales(self, tmp_path):
        config = IparsConfig(num_rels=1, num_times=4, cells_per_node=50,
                             num_nodes=1)
        mount = local_mount(str(tmp_path))
        text, _ = ipars.generate(config, "I", mount)
        with Virtualizer(text, mount) as v:
            table = v.query("SELECT SOIL, POIL, OILVX FROM IparsData")
        assert 0 <= table["SOIL"].min() and table["SOIL"].max() < 1
        assert 500 <= table["POIL"].min() and table["POIL"].max() < 5000
        assert -20 <= table["OILVX"].min() and table["OILVX"].max() < 20

    def test_coordinates_form_lattice(self, ipars_l0):
        config, text, mount = ipars_l0
        with Virtualizer(text, mount) as v:
            table = v.query("SELECT X, Y, Z FROM IparsData WHERE TIME = 1 AND REL = 0")
        for name in ("X", "Y", "Z"):
            values = np.unique(table[name])
            assert np.allclose(values % 10.0, 0)

    def test_row_count_properties(self):
        config = IparsConfig(num_rels=3, num_times=7, cells_per_node=11,
                             num_nodes=2)
        assert config.total_cells == 22
        assert config.total_rows == 3 * 7 * 22
        assert config.row_bytes == 2 + 4 + 20 * 4


class TestLayoutEquivalence:
    """The heart of the Figure 9 experiment: every layout stores the same
    virtual table."""

    CONFIG = IparsConfig(num_rels=2, num_times=6, cells_per_node=20,
                         num_nodes=2)
    QUERIES = [
        "SELECT * FROM IparsData WHERE TIME>2 AND TIME<5",
        "SELECT REL, TIME, X, SOIL FROM IparsData WHERE SOIL > 0.5",
        "SELECT SGAS FROM IparsData WHERE SPEED(OILVX, OILVY, OILVZ) < 20",
    ]

    @pytest.fixture(scope="class")
    def tables(self, tmp_path_factory):
        results = {}
        for layout in ALL_LAYOUTS:
            root = tmp_path_factory.mktemp(f"layout_{layout}")
            mount = local_mount(str(root))
            text, _ = ipars.generate(self.CONFIG, layout, mount)
            with Virtualizer(text, mount) as v:
                results[layout] = [v.query(q) for q in self.QUERIES]
        return results

    @pytest.mark.parametrize("layout", [l for l in ALL_LAYOUTS if l != "L0"])
    def test_layout_matches_l0(self, tables, layout):
        for got, expected in zip(tables[layout], tables["L0"]):
            assert_tables_equal(got, expected)


class TestTitanGenerator:
    def test_row_and_chunk_counts(self, titan_small):
        config, text, mount, _ = titan_small
        dataset = CompiledDataset(text)
        assert dataset.total_data_bytes == config.total_rows * config.row_bytes
        with Virtualizer(text, mount) as v:
            assert v.query("SELECT TIME FROM TitanData").num_rows == config.total_rows

    def test_chunks_are_spatially_local(self, titan_small):
        config, text, mount, summaries = titan_small
        # Each chunk's X extent is one lattice cell wide.
        cell_w = config.extent[0] / config.chunks_x
        for key in list(summaries._bounds)[:10]:
            lo, hi = summaries.bounds(key)["X"]
            assert hi - lo <= cell_w

    def test_s1_selectivities(self, titan_small):
        config, text, mount, _ = titan_small
        with Virtualizer(text, mount) as v:
            q4 = v.query("SELECT S1 FROM TitanData WHERE S1 < 0.01").num_rows
            q5 = v.query("SELECT S1 FROM TitanData WHERE S1 < 0.5").num_rows
        # S1 is chunk-clustered: Q4 selectivity is ~1% in expectation but
        # noisy at small chunk counts; Q5 stays ~50%.
        assert q4 / config.total_rows < 0.08
        assert q5 / config.total_rows == pytest.approx(0.5, abs=0.07)

    def test_s1_clustering(self, titan_small):
        """Qualifying S1 rows concentrate in few chunks (index-friendly)."""
        config, text, mount, _ = titan_small
        with Virtualizer(text, mount) as v:
            # Chunk ids are not a schema attribute; use X/Y/Z buckets as a
            # proxy: count distinct chunk-sized TIME cells touched.
            low = v.query("SELECT TIME, X FROM TitanData WHERE S1 < 0.05")
            total = config.total_rows
        if low.num_rows:
            touched = len(
                {
                    (int(t) // max(1, config.time_extent // config.chunks_t),
                     int(x) // max(1, int(config.extent[0] // config.chunks_x)))
                    for t, x in zip(low["TIME"], low["X"])
                }
            )
            # Far fewer distinct cells than a uniform 5% spread would hit.
            assert touched <= config.total_chunks // 2

    def test_uneven_node_split_rejected(self):
        config = TitanConfig(chunks_x=3, chunks_y=1, chunks_z=1, chunks_t=1,
                             num_nodes=2)
        with pytest.raises(ReproError, match="divide"):
            config.chunks_per_node

    def test_time_is_integer_column(self, titan_small):
        _, text, mount, _ = titan_small
        with Virtualizer(text, mount) as v:
            table = v.query("SELECT TIME FROM TitanData WHERE TIME < 100")
        assert table["TIME"].dtype == np.dtype("<i4")


class TestWriter:
    def test_only_missing_skips_existing(self, tmp_path):
        config = IparsConfig(num_rels=1, num_times=2, cells_per_node=5,
                             num_nodes=1)
        mount = local_mount(str(tmp_path))
        text, first = ipars.generate(config, "I", mount)
        path = mount("osu0", "ipars/all.bin")
        before = os.path.getmtime(path)
        _, second = ipars.generate(config, "I", mount, only_missing=True)
        assert first == second
        assert os.path.getmtime(path) == before

    def test_rewrites_wrong_sized_files(self, tmp_path):
        config = IparsConfig(num_rels=1, num_times=2, cells_per_node=5,
                             num_nodes=1)
        mount = local_mount(str(tmp_path))
        text, _ = ipars.generate(config, "I", mount)
        path = mount("osu0", "ipars/all.bin")
        with open(path, "wb") as handle:
            handle.write(b"junk")
        ipars.generate(config, "I", mount, only_missing=True)
        dataset = CompiledDataset(text)
        assert os.path.getsize(path) == dataset.files[0].expected_size

    def test_value_fn_error_for_missing_var(self, tmp_path):
        # A value function asking for a variable the layout lacks fails
        # loudly instead of writing garbage.
        from repro.datasets.ipars import make_value_fn

        config = IparsConfig()
        fn = make_value_fn(config)
        with pytest.raises(ReproError, match="needs variable"):
            fn("SOIL", {}, {})
