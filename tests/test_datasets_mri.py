"""Tests for the MRI study archive dataset."""

import numpy as np
import pytest

from repro.core import CompiledDataset, GeneratedDataset, Virtualizer, local_mount
from repro.datasets import mri
from repro.datasets.mri import MODALITIES, MriConfig


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    config = MriConfig(num_studies=4, slices=4, rows=12, cols=12,
                       num_nodes=2, lesion_every=2)
    root = tmp_path_factory.mktemp("mri")
    mount = local_mount(str(root))
    text, _ = mri.generate(config, mount)
    return config, text, mount


class TestStructure:
    def test_file_placement_round_robin(self, archive):
        config, text, _ = archive
        dataset = CompiledDataset(text)
        # One file per modality per study.
        assert len(dataset.files) == config.num_studies * len(MODALITIES)
        for file in dataset.files:
            assert file.node == f"node{file.env['STUDY'] % config.num_nodes}"
            assert f"study{file.env['STUDY']}/" in file.relpath

    def test_groups_join_modalities_per_study(self, archive):
        config, text, _ = archive
        dataset = CompiledDataset(text)
        assert len(dataset.groups) == config.num_studies
        for group in dataset.groups:
            assert len(group.files) == len(MODALITIES)
            studies = {f.env["STUDY"] for f in group.files}
            assert len(studies) == 1

    def test_afc_granularity_is_per_slice(self, archive):
        config, text, _ = archive
        dataset = CompiledDataset(text)
        afcs = dataset.index({})
        assert len(afcs) == config.num_studies * config.slices
        for afc in afcs:
            assert afc.num_rows == config.rows * config.cols
            assert len(afc.chunks) == len(MODALITIES)

    def test_volume_bytes(self, archive):
        config, text, _ = archive
        dataset = CompiledDataset(text)
        per_volume = config.voxels_per_study * 2
        assert all(f.expected_size == per_volume for f in dataset.files)


class TestContent:
    def test_voxel_count(self, archive):
        config, text, mount = archive
        with Virtualizer(text, mount) as v:
            table = v.query("SELECT STUDY FROM MriArchive WHERE SLICE = 0")
        assert table.num_rows == config.num_studies * config.rows * config.cols

    def test_intensities_in_range(self, archive):
        config, text, mount = archive
        with Virtualizer(text, mount) as v:
            table = v.query("SELECT T1, T2, FLAIR FROM MriArchive WHERE STUDY = 1")
        for m in MODALITIES:
            assert table[m].dtype == np.dtype("<u2")
            assert table[m].min() >= 0

    def test_lesion_found_only_in_lesion_studies(self, archive):
        config, text, mount = archive
        with Virtualizer(text, mount) as v:
            for study in range(config.num_studies):
                hits = v.query(mri.lesion_query(config, study)).num_rows
                if config.has_lesion(study):
                    assert hits > 0, f"study {study} should show a lesion"
                else:
                    assert hits == 0, f"study {study} is a control"

    def test_lesion_is_spatially_compact(self, archive):
        config, text, mount = archive
        study = 0
        assert config.has_lesion(study)
        with Virtualizer(text, mount) as v:
            table = v.query(mri.lesion_query(config, study))
        cs, cr, cc = config.lesion_center(study)
        rs, rr, rc = config.lesion_radii
        dist2 = (
            ((table["SLICE"] - cs) / rs) ** 2
            + ((table["ROW"] - cr) / rr) ** 2
            + ((table["COL"] - cc) / rc) ** 2
        )
        assert dist2.max() <= 1.0 + 1e-9

    def test_t1_hypointense_in_lesion(self, archive):
        config, text, mount = archive
        with Virtualizer(text, mount) as v:
            lesion = v.query(
                "SELECT T1 FROM MriArchive WHERE STUDY = 0 AND FLAIR > 2400"
            )
            normal = v.query(
                "SELECT T1 FROM MriArchive WHERE STUDY = 0 AND FLAIR < 1200"
            )
        assert lesion.num_rows and normal.num_rows
        assert lesion["T1"].mean() < normal["T1"].mean()

    def test_generated_equals_interpreted(self, archive):
        config, text, mount = archive
        from tests.conftest import assert_tables_equal

        sql = "SELECT * FROM MriArchive WHERE STUDY IN (0, 3) AND SLICE <= 1"
        with Virtualizer(text, mount, use_codegen=True) as a:
            with Virtualizer(text, mount, use_codegen=False) as b:
                assert_tables_equal(a.query(sql), b.query(sql))

    def test_study_and_slice_pruning(self, archive):
        config, text, mount = archive
        with Virtualizer(text, mount) as v:
            plan = v.plan(
                "SELECT T1 FROM MriArchive WHERE STUDY = 2 AND SLICE = 1"
            )
        assert len(plan.afcs) == 1
        assert plan.planned_rows == config.rows * config.cols

    def test_deterministic_regeneration(self, archive, tmp_path):
        config, text, mount = archive
        mount2 = local_mount(str(tmp_path))
        mri.generate(config, mount2)
        a = open(mount("node0", f"{config.dirname}/study0/T1.vol"), "rb").read()
        b = open(mount2("node0", f"{config.dirname}/study0/T1.vol"), "rb").read()
        assert a == b
