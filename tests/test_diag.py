"""Tests for the repro.diag static-analysis subsystem.

One fixture descriptor (or query) per diagnostic code, span assertions,
the validate_descriptor shim contract, strict-mode escalation, tracer
integration, and the `repro check` CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.core import CompiledDataset, ExecOptions, Virtualizer, local_mount
from repro.diag import (
    CODES,
    Collector,
    Diagnostic,
    Severity,
    analyze_query,
    lint_descriptor,
    lint_text,
)
from repro.errors import MetadataValidationError, QueryValidationError
from repro.metadata import parse_descriptor
from repro.obs import Tracer
from tests.conftest import PAPER_DESCRIPTOR


def minimal(layout_body: str, schema_extra: str = "", dirs: int = 1) -> str:
    """A tiny descriptor wrapper (same shape as the validation tests)."""
    dir_lines = "\n".join(f"DIR[{i}] = n{i}/d" for i in range(dirs))
    return f"""
[S]
T = int
X = float
{schema_extra}

[D]
DatasetDescription = S
{dir_lines}

{layout_body}
"""


GOOD = minimal(
    'DATASET "D" { DATAINDEX { T } '
    "DATASPACE { LOOP T 1:4:1 { X } } DATA { DIR[0]/f } }"
)


def codes_of(collector: Collector):
    return collector.codes()


def the(collector: Collector, code: str) -> Diagnostic:
    matches = [d for d in collector if d.code == code]
    assert matches, f"expected {code} in {[d.code for d in collector]}"
    return matches[0]


# ---------------------------------------------------------------------------
# Core vocabulary
# ---------------------------------------------------------------------------


class TestCore:
    def test_emit_uses_registered_severity(self):
        c = Collector(source="t")
        d = c.emit("RV126", "no index")
        assert d.severity is Severity.INFO
        assert d.source == "t"

    def test_unregistered_code_rejected(self):
        with pytest.raises(KeyError, match="RV999"):
            Collector().emit("RV999", "nope")

    def test_counts_and_first_error(self):
        c = Collector()
        c.emit("RV126", "info first")
        c.emit("RV122", "warn")
        c.emit("RV101", "err")
        assert len(c.errors) == 1 and len(c.warnings) == 1 and len(c.infos) == 1
        assert c.first_error().code == "RV101"
        assert c.has_errors

    def test_sorted_puts_spanless_last(self):
        from repro.metadata.spans import Span

        c = Collector()
        c.emit("RV101", "no span")
        c.emit("RV102", "spanned", span=Span(3, 1))
        c.emit("RV103", "earlier", span=Span(1, 5))
        assert [d.code for d in c.sorted()] == ["RV103", "RV102", "RV101"]

    def test_format_includes_position_and_code(self):
        from repro.metadata.spans import Span

        d = Diagnostic("RV119", Severity.ERROR, "empty", Span(4, 7), None, "f.desc")
        assert d.format() == "f.desc:4:7: error[RV119]: empty"

    def test_to_json_roundtrips(self):
        c = Collector(source="s")
        c.emit("RV122", "unused", fix="remove it")
        payload = json.loads(c.to_json())
        assert payload["warnings"] == 1
        [entry] = payload["diagnostics"]
        assert entry["code"] == "RV122"
        assert entry["fix"] == "remove it"
        assert entry["title"] == CODES["RV122"][1]


# ---------------------------------------------------------------------------
# Descriptor linter: one fixture per code
# ---------------------------------------------------------------------------


class TestDescriptorCodes:
    def test_clean_descriptor_has_no_findings(self):
        assert len(lint_text(GOOD)) == 0

    def test_rv001_syntax_error_with_span(self):
        c = lint_text('DATASET "D" { DATASPACE {')
        d = the(c, "RV001")
        assert d.severity is Severity.ERROR
        assert d.span is not None and d.span.line >= 1

    def test_rv002_assembly_error(self):
        text = """
[D]
DatasetDescription = GHOST
DIR[0] = n/d

DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }
"""
        d = the(lint_text(text), "RV002")
        assert "GHOST" in d.message

    def test_rv101_no_leaf(self):
        text = minimal('DATASET "D" { DATAINDEX { T } }')
        d = the(lint_text(text), "RV101")
        assert "no leaf" in d.message
        assert d.span is not None

    def test_rv102_leaf_without_files(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { } }'
        )
        d = the(lint_text(text), "RV102")
        assert d.span is not None

    def test_rv103_empty_dataset(self):
        text = minimal(
            'DATASET "D" { DATA { DATASET C1 DATASET C2 } }\n'
            'DATASET "C1" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }\n'
            'DATASET "C2" { }'
        )
        d = the(lint_text(text), "RV103")
        assert "C2" in d.message and d.span is not None

    def test_rv104_patterns_on_non_leaf(self):
        text = minimal(
            'DATASET "D" { '
            'DATASET "C" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } } '
            "DATA { DIR[0]/g } }"
        )
        d = the(lint_text(text), "RV104")
        assert d.span is not None

    def test_rv105_undefined_schema_reference(self):
        text = minimal(
            'DATASET "D" { DATATYPE { GHOST } '
            "DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }"
        )
        d = the(lint_text(text), "RV105")
        assert "GHOST" in d.message and d.span is not None

    def test_rv106_stored_attr_not_in_schema(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X NOPE } } '
            "DATA { DIR[0]/f } }"
        )
        d = the(lint_text(text), "RV106")
        assert "NOPE" in d.message
        # The span points at the NOPE token itself.
        line = text.splitlines()[d.span.line - 1]
        assert line[d.span.column - 1 :].startswith("NOPE")

    def test_rv107_stored_twice_in_leaf(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X X } } '
            "DATA { DIR[0]/f } }"
        )
        d = the(lint_text(text), "RV107")
        assert d.span is not None

    def test_rv108_stored_by_two_leaves(self):
        text = minimal(
            'DATASET "D" { DATA { DATASET C1 DATASET C2 } }\n'
            'DATASET "C1" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/a } }\n'
            'DATASET "C2" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/b } }'
        )
        d = the(lint_text(text), "RV108")
        assert "C1" in d.message and "C2" in d.message

    def test_rv109_binding_bound_twice(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } '
            "DATA { DIR[0]/f$I I=0:1:1 I=0:1:1 } }"
        )
        d = the(lint_text(text), "RV109")
        assert d.span is not None

    def test_rv110_loop_shadowing(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { LOOP T 1:2:1 { X } } } '
            "DATA { DIR[0]/f } }"
        )
        d = the(lint_text(text), "RV110")
        assert "shadows" in d.message and d.span is not None

    def test_rv111_loop_collides_with_binding(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 0:1:1 { X } } '
            "DATA { DIR[0]/f$T T=0:1:1 } }"
        )
        d = the(lint_text(text), "RV111")
        assert d.span is not None

    def test_rv112_loop_bound_nonbinding_var(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:N:1 { X } } DATA { DIR[0]/f } }'
        )
        d = the(lint_text(text), "RV112")
        assert "'N'" in d.message or "N" in d.message
        assert d.span is not None

    def test_rv113_pattern_unbound_variable(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f$Q } }'
        )
        d = the(lint_text(text), "RV113")
        assert "Q" in d.message and d.span is not None

    def test_rv114_undeclared_dir_index(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[7]/f } }'
        )
        d = the(lint_text(text), "RV114")
        assert "DIR[7]" in d.message and d.span is not None

    def test_rv115_invalid_expanded_path(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]//f } }'
        )
        d = the(lint_text(text), "RV115")
        assert d.span is not None

    def test_rv116_attr_neither_stored_nor_implicit(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }',
            schema_extra="Y = float",
        )
        d = the(lint_text(text), "RV116")
        assert "'Y'" in d.message
        # Span points at the schema declaration line of Y.
        line = text.splitlines()[d.span.line - 1]
        assert line.startswith("Y")

    def test_rv117_implicit_attr_not_integer(self):
        text = """
[S]
T = float
X = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }
"""
        d = the(lint_text(text), "RV117")
        assert "integer" in d.message and d.span is not None

    def test_rv118_dataindex_not_in_schema(self):
        text = minimal(
            'DATASET "D" { DATAINDEX { GHOST } '
            "DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }"
        )
        d = the(lint_text(text), "RV118")
        assert "GHOST" in d.message and d.span is not None

    def test_rv119_empty_binding_range(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } '
            "DATA { DIR[0]/f$I I=5:1:1 } }"
        )
        d = the(lint_text(text), "RV119")
        assert d.severity is Severity.ERROR and d.span is not None

    def test_rv119_empty_constant_loop_range(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 5:1:1 { X } } DATA { DIR[0]/f } }'
        )
        d = the(lint_text(text), "RV119")
        assert "empty" in d.message.lower()

    def test_rv120_nonpositive_loop_stride(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:4:0 { X } } DATA { DIR[0]/f } }'
        )
        d = the(lint_text(text), "RV120")
        assert "stride" in d.message and d.span is not None

    def test_rv121_division_by_zero_in_loop_bound(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:(4/0):1 { X } } '
            "DATA { DIR[0]/f } }"
        )
        d = the(lint_text(text), "RV121")
        assert "zero" in d.message and d.span is not None

    def test_rv122_unused_binding_variable(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } '
            "DATA { DIR[0]/f$I I=0:1:1 J=0:1:1 } }"
        )
        d = the(lint_text(text), "RV122")
        assert d.severity is Severity.WARNING
        assert "'J'" in d.message and d.span is not None

    def test_rv123_duplicate_file_across_leaves(self):
        text = minimal(
            'DATASET "D" { DATA { DATASET C1 DATASET C2 } }\n'
            'DATASET "C1" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/same } }\n'
            'DATASET "C2" { DATASPACE { LOOP T 1:2:1 { T } } DATA { DIR[0]/same } }'
        )
        d = the(lint_text(text), "RV123")
        assert "same" in d.message and d.span is not None

    def test_rv124_implicit_type_too_narrow(self):
        text = """
[S]
T = char
X = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" { DATASPACE { LOOP T 1:300:1 { X } } DATA { DIR[0]/f } }
"""
        d = the(lint_text(text), "RV124")
        assert d.severity is Severity.WARNING
        assert "300" in d.message and d.span is not None

    def test_rv125_stride_overshoots_upper_bound(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 0:5:2 { X } } DATA { DIR[0]/f } }'
        )
        d = the(lint_text(text), "RV125")
        assert d.severity is Severity.INFO
        assert "4" in d.message  # last reached value

    def test_rv126_no_dataindex(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }'
        )
        d = the(lint_text(text), "RV126")
        assert d.severity is Severity.INFO

    def test_rv127_unreferenced_storage_dir(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }',
            dirs=2,
        )
        d = the(lint_text(text), "RV127")
        assert "DIR[1]" in d.message and d.span is not None

    def test_collects_many_findings_at_once(self):
        text = minimal(
            'DATASET "D" { DATAINDEX { GHOST } '
            "DATASPACE { LOOP T 1:2:1 { X NOPE } } DATA { DIR[7]/f$Q } }",
            schema_extra="Y = float",
        )
        c = lint_text(text)
        got = set(codes_of(c))
        assert {"RV106", "RV113", "RV116", "RV118"} <= got

    def test_paper_descriptor_is_clean(self):
        assert not lint_text(PAPER_DESCRIPTOR).has_errors


# ---------------------------------------------------------------------------
# Query analyzer: one fixture per code
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def good_descriptor():
    return parse_descriptor(GOOD)


class TestQueryCodes:
    def test_clean_query(self, good_descriptor):
        c = analyze_query(good_descriptor, "SELECT X FROM D WHERE T > 2")
        assert len(c) == 0

    def test_rq200_syntax_error(self, good_descriptor):
        d = the(analyze_query(good_descriptor, "SELEC X FROM D"), "RQ200")
        assert d.severity is Severity.ERROR

    def test_rq201_wrong_table(self, good_descriptor):
        d = the(analyze_query(good_descriptor, "SELECT X FROM Other"), "RQ201")
        assert "Other" in d.message and d.span is not None

    def test_rq202_unknown_select_attr(self, good_descriptor):
        d = the(analyze_query(good_descriptor, "SELECT NOPE FROM D"), "RQ202")
        assert "NOPE" in d.message
        assert d.span is not None and d.span.column == len("SELECT ") + 1

    def test_rq203_unknown_where_attr(self, good_descriptor):
        d = the(
            analyze_query(good_descriptor, "SELECT X FROM D WHERE NOPE > 1"),
            "RQ203",
        )
        assert d.span is not None

    def test_rq204_unknown_function(self, good_descriptor):
        d = the(
            analyze_query(good_descriptor, "SELECT X FROM D WHERE NOFUNC(X) > 1"),
            "RQ204",
        )
        assert "NOFUNC" in d.message and d.span is not None

    def test_rq205_arity_mismatch(self, good_descriptor):
        d = the(
            analyze_query(good_descriptor, "SELECT X FROM D WHERE SPEED(X) > 1"),
            "RQ205",
        )
        assert "3" in d.message and "1" in d.message

    def test_rq206_string_vs_numeric(self, good_descriptor):
        d = the(
            analyze_query(good_descriptor, "SELECT X FROM D WHERE T = 'abc'"),
            "RQ206",
        )
        assert "'abc'" in d.message and d.span is not None

    def test_rq207_contradictory_where(self, good_descriptor):
        d = the(
            analyze_query(
                good_descriptor, "SELECT X FROM D WHERE T > 5 AND T < 2"
            ),
            "RQ207",
        )
        assert d.severity is Severity.WARNING and d.span is not None

    def test_rq208_outside_declared_bounds(self, good_descriptor):
        # The descriptor's LOOP declares T in [1, 4].
        d = the(
            analyze_query(good_descriptor, "SELECT X FROM D WHERE T > 100"),
            "RQ208",
        )
        assert "[1, 4]" in d.message and d.span is not None

    def test_rq209_index_pruning_defeated(self, good_descriptor):
        d = the(
            analyze_query(
                good_descriptor,
                "SELECT X FROM D WHERE SPEED(T, X, X) > 1",
            ),
            "RQ209",
        )
        assert "'T'" in d.message and d.span is not None

    def test_rq209_or_with_unconstrained_branch(self, good_descriptor):
        d = the(
            analyze_query(
                good_descriptor,
                "SELECT X FROM D WHERE T > 2 OR X > 0.5",
            ),
            "RQ209",
        )
        assert d.severity is Severity.WARNING

    def test_rq210_duplicate_select(self, good_descriptor):
        d = the(analyze_query(good_descriptor, "SELECT X, X FROM D"), "RQ210")
        assert d.span is not None

    def test_accepts_parsed_query_objects(self, good_descriptor):
        from repro.sql import parse_query

        q = parse_query("SELECT NOPE FROM D")
        c = analyze_query(good_descriptor, q)
        assert "RQ202" in codes_of(c)


# ---------------------------------------------------------------------------
# validate_descriptor shim contract
# ---------------------------------------------------------------------------


class TestValidateShim:
    def test_first_error_message_preserved(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X NOPE } } '
            "DATA { DIR[7]/f } }"
        )
        with pytest.raises(MetadataValidationError, match="NOPE"):
            parse_descriptor(text)

    def test_validate_false_skips_checks(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X NOPE } } '
            "DATA { DIR[0]/f } }"
        )
        descriptor = parse_descriptor(text, validate=False)
        assert descriptor.name == "D"
        with pytest.raises(MetadataValidationError):
            descriptor.validate()

    def test_warnings_do_not_raise(self):
        # RV122/RV126/RV127 are warnings/infos: load must still succeed.
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } '
            "DATA { DIR[0]/f$I I=0:1:1 J=0:0:1 } }",
            dirs=2,
        )
        descriptor = parse_descriptor(text)
        collector = lint_descriptor(descriptor)
        assert not collector.has_errors
        assert "RV122" in codes_of(collector)
        assert "RV127" in codes_of(collector)


# ---------------------------------------------------------------------------
# Execution wiring: strict mode and tracer events
# ---------------------------------------------------------------------------


class TestExecutionWiring:
    def test_compiled_dataset_diagnostics_cached(self):
        dataset = CompiledDataset(parse_descriptor(GOOD))
        assert dataset.diagnostics is dataset.diagnostics
        assert not dataset.diagnostics.has_errors

    def test_strict_blocks_warning_query(self, paper_dataset):
        text, mount = paper_dataset
        with Virtualizer(text, mount, use_codegen=False) as v:
            with pytest.raises(QueryValidationError, match="strict mode"):
                v.query(
                    "SELECT X FROM IparsData WHERE TIME > 5 AND TIME < 2",
                    options=ExecOptions(strict=True),
                )

    def test_strict_allows_clean_query(self, paper_dataset):
        text, mount = paper_dataset
        with Virtualizer(text, mount, use_codegen=False) as v:
            table = v.query(
                "SELECT X FROM IparsData WHERE TIME > 5",
                options=ExecOptions(strict=True),
            )
            assert table.num_rows > 0

    def test_non_strict_still_executes(self, paper_dataset):
        text, mount = paper_dataset
        with Virtualizer(text, mount, use_codegen=False) as v:
            table = v.query(
                "SELECT X FROM IparsData WHERE TIME > 1000 AND TIME < 5"
            )
            assert table.num_rows == 0

    def test_tracer_records_diag_warnings(self, paper_dataset):
        text, mount = paper_dataset
        tracer = Tracer()
        with Virtualizer(text, mount, use_codegen=False) as v:
            v.query(
                "SELECT X FROM IparsData WHERE TIME > 5 AND TIME < 2",
                options=ExecOptions(trace=tracer),
            )
        counters = tracer.metrics.as_dict()["counters"]
        assert counters.get("diag.warnings", 0) >= 1

    def test_query_service_strict(self, paper_dataset):
        from repro.storm import QueryService, VirtualCluster

        text, mount = paper_dataset
        dataset = CompiledDataset(text)
        root = mount("", "").rstrip("/")
        cluster = VirtualCluster(root, list(dataset.descriptor.storage.nodes))
        with QueryService(dataset, cluster) as service:
            with pytest.raises(QueryValidationError, match="strict mode"):
                service.submit(
                    "SELECT X FROM IparsData WHERE TIME > 5 AND TIME < 2",
                    ExecOptions(remote=False, strict=True),
                )


# ---------------------------------------------------------------------------
# CLI: repro check
# ---------------------------------------------------------------------------


@pytest.fixture()
def good_file(tmp_path):
    path = tmp_path / "good.desc"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture()
def bad_file(tmp_path):
    path = tmp_path / "bad.desc"
    path.write_text(
        minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X NOPE } } '
            "DATA { DIR[0]/f } }"
        )
    )
    return str(path)


class TestCheckCli:
    def test_clean_exits_zero(self, good_file, capsys):
        assert cli_main(["check", good_file]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_errors_exit_one(self, bad_file, capsys):
        assert cli_main(["check", bad_file]) == 1
        assert "RV106" in capsys.readouterr().out

    def test_warnings_only_strict_exits_three(self, tmp_path, capsys):
        path = tmp_path / "warn.desc"
        path.write_text(
            minimal(
                'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } '
                "DATA { DIR[0]/f$I I=0:1:1 J=0:0:1 } }"
            )
        )
        assert cli_main(["check", str(path)]) == 0
        assert cli_main(["check", str(path), "--strict"]) == 3
        assert "RV122" in capsys.readouterr().out

    def test_query_analysis_merged(self, good_file, capsys):
        code = cli_main(
            ["check", good_file, "--query", "SELECT NOPE FROM D"]
        )
        assert code == 1
        assert "RQ202" in capsys.readouterr().out

    def test_json_format(self, bad_file, capsys):
        assert cli_main(["check", bad_file, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        codes = [d["code"] for d in payload["diagnostics"]]
        assert "RV106" in codes
        entry = next(d for d in payload["diagnostics"] if d["code"] == "RV106")
        assert entry["span"]["line"] >= 1 and entry["span"]["column"] >= 1

    def test_text_output_has_line_and_column(self, bad_file, capsys):
        cli_main(["check", bad_file])
        out = capsys.readouterr().out
        assert "error[RV106]" in out
        # source:line:col prefix present
        assert any(
            part.count(":") >= 2 for part in out.splitlines() if "RV106" in part
        )


# ---------------------------------------------------------------------------
# Registry / docs consistency
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_at_least_twelve_distinct_emittable_codes(self):
        """The acceptance bar: ≥12 distinct codes across the fixtures."""
        texts = [
            'DATASET "D" { DATASPACE {',
            minimal('DATASET "D" { DATAINDEX { T } }'),
            minimal(
                'DATASET "D" { DATAINDEX { GHOST } DATASPACE '
                "{ LOOP T 1:2:1 { X NOPE } } DATA { DIR[7]/f$Q } }",
                schema_extra="Y = float",
            ),
            minimal(
                'DATASET "D" { DATASPACE { LOOP T 5:1:1 '
                "{ LOOP T 1:2:0 { X } } } DATA { DIR[0]/f$I I=0:1:1 J=0:0:1 } }",
                dirs=2,
            ),
            minimal(
                'DATASET "D" { DATASPACE { LOOP T 1:(4/0):1 { X } } '
                "DATA { DIR[0]/f } }"
            ),
        ]
        seen = set()
        for text in texts:
            seen.update(codes_of(lint_text(text)))
        good = parse_descriptor(GOOD)
        for sql in [
            "SELEC",
            "SELECT NOPE, X, X FROM Other WHERE ALSO > 1",
            "SELECT X FROM D WHERE SPEED(X) > 1 AND NOFUNC(X) > 2",
            "SELECT X FROM D WHERE T = 'abc'",
            "SELECT X FROM D WHERE T > 5 AND T < 2",
            "SELECT X FROM D WHERE T > 100",
            "SELECT X FROM D WHERE T > 2 OR X > 0.5",
        ]:
            seen.update(codes_of(analyze_query(good, sql)))
        assert len(seen) >= 12, sorted(seen)
        assert seen <= set(CODES), sorted(seen - set(CODES))

    def test_docs_catalogue_every_code(self):
        import os

        docs = os.path.join(
            os.path.dirname(__file__), "..", "docs", "diagnostics.md"
        )
        content = open(docs).read()
        missing = [code for code in CODES if code not in content]
        assert not missing, f"codes missing from docs/diagnostics.md: {missing}"

    def test_every_code_has_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert isinstance(severity, Severity)
            assert title
