"""Big-endian datasets survive the full pipeline.

2004-era scientific flat files were frequently written on big-endian
hardware; the schema's byte-order prefix (``X = be float``) must flow
through strip formats, the generic writer, the extractor, and results.
"""

import numpy as np
import pytest

from repro.core import CompiledDataset, Virtualizer, local_mount
from repro.datasets.writers import write_dataset
from repro.metadata.types import parse_type

BE_TEXT = """
[S]
T = int
A = be float
B = be double
C = int

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATAINDEX { T }
  DATASPACE {
    LOOP T 1:6:1 {
      LOOP G 0:4:1 { A B C }
    }
  }
  DATA { DIR[0]/mixed.bin }
}
"""


class TestParseTypePrefixes:
    def test_be_prefix(self):
        t = parse_type("be float")
        assert t.dtype == np.dtype(">f4")

    def test_big_endian_prefix(self):
        assert parse_type("big endian short int").dtype == np.dtype(">i2")

    def test_le_prefix(self):
        assert parse_type("le double").dtype == np.dtype("<f8")

    def test_prefix_with_alias(self):
        assert parse_type("be int32").dtype == np.dtype(">i4")

    def test_not_a_prefix(self):
        # 'be' only counts as a prefix when what follows is a type.
        with pytest.raises(Exception):
            parse_type("be giraffe")

    def test_case_insensitive(self):
        assert parse_type("BE Float").dtype == np.dtype(">f4")


class TestBigEndianPipeline:
    @pytest.fixture(scope="class")
    def env(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("be")
        mount = local_mount(str(root))
        dataset = CompiledDataset(BE_TEXT)

        def value_fn(attr, env, coords):
            base = coords["T"] * 10 + coords["G"]
            if attr == "A":
                return base * 1.0
            if attr == "B":
                return base * 2.0
            return base

        write_dataset(dataset, mount, value_fn)
        return str(root), mount

    def test_bytes_on_disk_are_big_endian(self, env):
        root, mount = env
        raw = open(mount("n0", "d/mixed.bin"), "rb").read()
        # First record: T=1, G=0 -> A = 10.0 as big-endian f4.
        assert raw[:4] == np.array(10.0, dtype=">f4").tobytes()
        # ...followed by B = 20.0 as big-endian f8.
        assert raw[4:12] == np.array(20.0, dtype=">f8").tobytes()
        # ...and C = 10 as little-endian i4.
        assert raw[12:16] == np.array(10, dtype="<i4").tobytes()

    def test_values_roundtrip(self, env):
        root, mount = env
        with Virtualizer(BE_TEXT, mount) as v:
            table = v.query("SELECT T, A, B, C FROM D WHERE T = 3")
        assert table.num_rows == 5
        np.testing.assert_allclose(
            np.sort(table["A"]), [30.0, 31.0, 32.0, 33.0, 34.0]
        )
        np.testing.assert_allclose(np.sort(table["B"]), np.sort(table["A"]) * 2)
        np.testing.assert_array_equal(np.sort(table["C"]), [30, 31, 32, 33, 34])

    def test_predicates_on_be_columns(self, env):
        root, mount = env
        with Virtualizer(BE_TEXT, mount) as v:
            table = v.query("SELECT A FROM D WHERE A >= 30 AND A < 40")
        assert table.num_rows == 5

    def test_mixed_width_record_geometry(self):
        dataset = CompiledDataset(BE_TEXT)
        (file,) = dataset.files
        (strip,) = file.strips
        assert strip.record_size == 4 + 8 + 4
        assert strip.attr_formats == (">f4", ">f8", "<i4")
