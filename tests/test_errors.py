"""Tests for the exception hierarchy and error ergonomics."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_reproerror(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_family_trees(self):
        assert issubclass(errors.MetadataSyntaxError, errors.MetadataError)
        assert issubclass(errors.MetadataValidationError, errors.MetadataError)
        assert issubclass(errors.SchemaError, errors.MetadataError)
        assert issubclass(errors.QuerySyntaxError, errors.QueryError)
        assert issubclass(errors.QueryValidationError, errors.QueryError)
        assert issubclass(errors.ClusterError, errors.StormError)
        assert issubclass(errors.PartitionError, errors.StormError)

    def test_one_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.CodegenError("x")


class TestPositions:
    def test_metadata_syntax_position(self):
        exc = errors.MetadataSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(exc)
        assert "col 7" in str(exc)
        assert exc.line == 3 and exc.column == 7

    def test_query_syntax_position(self):
        exc = errors.QuerySyntaxError("oops", line=1, column=12)
        assert "line 1" in str(exc)

    def test_position_optional(self):
        exc = errors.MetadataSyntaxError("bad")
        assert str(exc) == "bad"


class TestRealErrorsArePrecise:
    def test_descriptor_error_points_at_line(self):
        from repro.metadata import parse_descriptor

        text = "\n".join(
            [
                "[S]",
                "T = int",
                "X = float",
                "",
                "[D]",
                "DatasetDescription = S",
                "DIR[0] = n/d",
                "",
                'DATASET "D" {',
                "  DATASPACE { LOOP T 1:2:1 { X } ",  # missing brace later
            ]
        )
        with pytest.raises(errors.MetadataSyntaxError) as info:
            parse_descriptor(text)
        assert info.value.line >= 9

    def test_query_error_mentions_candidates(self):
        from repro.sql.functions import FunctionRegistry

        registry = FunctionRegistry()
        registry.register("ALPHA", lambda x: x)
        with pytest.raises(errors.QueryValidationError, match="ALPHA"):
            registry.get("BETA")
