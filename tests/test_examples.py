"""Smoke tests: every example script runs cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "oil_reservoir.py",
    "satellite_composite.py",
    "custom_layout.py",
    "admin_workflow.py",
    "mri_lesion_search.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_examples_list_is_complete():
    present = {
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    }
    assert present == set(EXAMPLES)
