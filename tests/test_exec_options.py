"""Tests for the unified ExecOptions API and its deprecation shims."""

import pathlib

import pytest

import repro
from repro.core import ExecOptions, GeneratedDataset, Virtualizer, local_mount, open_dataset
from repro.core.options import DEFAULT_OPTIONS
from repro.obs import NULL_TRACER, Tracer
from repro.storm import QueryService, RoundRobinPartitioner, VirtualCluster
from repro.datasets import IparsConfig, ipars
from tests.conftest import assert_tables_equal


class TestExecOptions:
    def test_defaults(self):
        opts = ExecOptions()
        assert opts.remote is True
        assert opts.parallel is True
        assert opts.num_clients == 1
        assert opts.partitioner is None
        assert opts.batch_rows == 65536
        assert opts.trace is None
        assert opts.coalesce_gap_bytes == 64 * 1024
        assert opts.intra_node_workers == 1
        assert opts.connect_timeout == 5.0
        assert opts.max_connections_per_node == 4
        assert opts.inflight_limit == 64
        assert DEFAULT_OPTIONS == opts

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecOptions().remote = False

    def test_replace(self):
        base = ExecOptions()
        changed = base.replace(remote=False, num_clients=4)
        assert changed.remote is False and changed.num_clients == 4
        assert base.remote is True  # original untouched

    def test_tracer_resolution(self):
        assert ExecOptions().tracer() is NULL_TRACER
        assert ExecOptions(trace=False).tracer() is NULL_TRACER
        assert isinstance(ExecOptions(trace=True).tracer(), Tracer)
        mine = Tracer()
        assert ExecOptions(trace=mine).tracer() is mine

    def test_exported_from_top_level(self):
        assert repro.ExecOptions is ExecOptions
        assert hasattr(repro, "Tracer")
        assert hasattr(repro, "Mount")


@pytest.fixture(scope="module")
def small_service(tmp_path_factory):
    root = tmp_path_factory.mktemp("exec_opts")
    config = IparsConfig(num_rels=1, num_times=4, cells_per_node=10, num_nodes=2)
    cluster = VirtualCluster.create(str(root), config.num_nodes)
    text, _ = ipars.generate(config, "L0", cluster.mount())
    service = QueryService(GeneratedDataset(text), cluster)
    yield text, cluster, service
    service.close()


class TestSubmitOptions:
    def test_options_accepted(self, small_service):
        _, _, service = small_service
        result = service.submit(
            "SELECT X FROM IparsData",
            ExecOptions(remote=True, num_clients=2,
                        partitioner=RoundRobinPartitioner()),
        )
        assert len(result.deliveries) == 2

    def test_legacy_kwargs_warn_and_still_work(self, small_service):
        _, _, service = small_service
        with pytest.warns(DeprecationWarning, match="ExecOptions"):
            legacy = service.submit("SELECT X FROM IparsData", remote=False)
        modern = service.submit(
            "SELECT X FROM IparsData", ExecOptions(remote=False)
        )
        assert_tables_equal(legacy.table, modern.table)
        assert legacy.deliveries == [] and modern.deliveries == []

    def test_legacy_kwargs_override_options(self, small_service):
        _, _, service = small_service
        with pytest.warns(DeprecationWarning):
            result = service.submit(
                "SELECT X FROM IparsData",
                ExecOptions(remote=True),
                remote=False,
            )
        assert result.deliveries == []

    def test_total_stats_computed_once(self, small_service):
        _, _, service = small_service
        result = service.submit(
            "SELECT X FROM IparsData", ExecOptions(remote=False)
        )
        assert result.total_stats is result.total_stats  # cached, not rebuilt


class TestTransportOptions:
    def test_defaults_produce_no_findings(self):
        assert repro.analyze_options(ExecOptions()) == []

    def test_nonsense_knobs_flagged(self):
        findings = repro.analyze_options(
            ExecOptions(
                inflight_limit=0,
                max_connections_per_node=-2,
                connect_timeout=0.0,
            )
        )
        assert {f.code for f in findings} == {"RO300", "RO301", "RO302"}
        assert all(str(f.severity) == "error" for f in findings)

    def test_backoff_without_retries_warns(self):
        findings = repro.analyze_options(
            ExecOptions(retries=0, retry_backoff=0.5)
        )
        assert [f.code for f in findings] == ["RO303"]
        assert str(findings[0].severity) == "warning"

    def test_strict_rejects_zero_inflight(self, small_service):
        _, _, service = small_service
        with pytest.raises(repro.QueryValidationError, match="RO300"):
            service.submit(
                "SELECT X FROM IparsData",
                ExecOptions(strict=True, inflight_limit=0),
            )

    def test_nonstrict_executes_despite_bad_knobs(self, small_service):
        # Local transport never consults the pool limits; permissive mode
        # must not punish that.
        _, _, service = small_service
        result = service.submit(
            "SELECT X FROM IparsData",
            ExecOptions(remote=False, inflight_limit=0),
        )
        assert result.num_rows > 0


class TestVirtualizerOptions:
    def test_query_iter_batch_rows_kwarg_warns(self, ipars_l0):
        _, text, mount = ipars_l0
        with Virtualizer(text, mount) as v:
            with pytest.warns(DeprecationWarning, match="batch_rows"):
                batches = list(
                    v.query_iter("SELECT X FROM IparsData", batch_rows=100)
                )
            # Small batch size must actually take effect (multiple batches).
            assert len(batches) > 1

    def test_query_iter_options_no_warning(self, ipars_l0, recwarn):
        _, text, mount = ipars_l0
        with Virtualizer(text, mount) as v:
            batches = list(
                v.query_iter(
                    "SELECT X FROM IparsData",
                    options=ExecOptions(batch_rows=100),
                )
            )
        assert len(batches) > 1
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_query_accepts_options(self, ipars_l0):
        _, text, mount = ipars_l0
        with Virtualizer(text, mount) as v:
            plain = v.query("SELECT X FROM IparsData WHERE TIME = 1")
            traced = v.query(
                "SELECT X FROM IparsData WHERE TIME = 1",
                options=ExecOptions(trace=True),
            )
        assert_tables_equal(plain, traced)


class TestPathlibSupport:
    def test_local_mount_accepts_path(self, tmp_path):
        mount = local_mount(pathlib.Path(tmp_path))
        assert isinstance(mount("osu0", "x"), str)

    def test_open_dataset_accepts_path(self, ipars_l0, tmp_path):
        _, text, _ = ipars_l0
        # The ipars_l0 mount is rooted where generate() wrote; rebuild the
        # same root as a Path through the mount callable's closure-free API.
        config = IparsConfig(
            num_rels=1, num_times=2, cells_per_node=5, num_nodes=1
        )
        mount = local_mount(str(tmp_path))
        text2, _ = ipars.generate(config, "L0", mount)
        v = open_dataset(text2, pathlib.Path(tmp_path))
        try:
            assert v.query("SELECT X FROM IparsData").num_rows > 0
        finally:
            v.close()

    def test_codegen_path_accepts_path(self, tmp_path):
        config = IparsConfig(
            num_rels=1, num_times=2, cells_per_node=5, num_nodes=1
        )
        mount = local_mount(str(tmp_path))
        text, _ = ipars.generate(config, "L0", mount)
        out = pathlib.Path(tmp_path) / "gen.py"
        with Virtualizer(text, mount, codegen_path=out) as v:
            assert v.query("SELECT X FROM IparsData").num_rows > 0
        assert out.exists()
