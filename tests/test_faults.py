"""Fault injection (repro.faults) and degraded execution in QueryService."""

import numpy as np
import pytest

from repro.core import ExecOptions, GeneratedDataset
from repro.datasets import IparsConfig, ipars
from repro.errors import (
    FaultSpecError,
    InjectedFault,
    NodeFailureError,
    StormError,
)
from repro.faults import (
    PROFILES,
    FaultInjector,
    FaultRule,
    parse_rule,
    profile_rules,
)
from repro.storm import QueryService, VirtualCluster
from tests.conftest import assert_tables_equal

# ---------------------------------------------------------------------------
# Rules and injector mechanics
# ---------------------------------------------------------------------------


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            FaultRule("disk-melt")

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultSpecError, match="probability"):
            FaultRule("node-down", probability=0.0)
        with pytest.raises(FaultSpecError, match="probability"):
            FaultRule("node-down", probability=1.5)

    def test_bad_times_rejected(self):
        with pytest.raises(FaultSpecError, match="times"):
            FaultRule("node-down", times=0)

    def test_glob_matching(self):
        rule = FaultRule("node-down", node="osu*", path="*/soil.bin")
        assert rule.matches("osu3", "rel0/soil.bin")
        assert not rule.matches("titan0", "rel0/soil.bin")
        assert not rule.matches("osu3", "rel0/coords.bin")

    def test_parse_rule_full_spec(self):
        rule = parse_rule("short-read:osu0:*.bin:times=2,p=0.5,short=8")
        assert rule.kind == "short-read"
        assert rule.node == "osu0"
        assert rule.path == "*.bin"
        assert rule.times == 2
        assert rule.probability == 0.5
        assert rule.short_by == 8

    def test_parse_rule_defaults(self):
        rule = parse_rule("node-down")
        assert rule.node == "*" and rule.path == "*" and rule.times is None

    def test_parse_rule_bad_option(self):
        with pytest.raises(FaultSpecError, match="unknown rule option"):
            parse_rule("node-down:osu0:*:frequency=2")
        with pytest.raises(FaultSpecError, match="bad value"):
            parse_rule("node-down:osu0:*:times=lots")

    def test_profiles_all_construct(self):
        nodes = ["osu0", "osu1"]
        for name in PROFILES:
            assert profile_rules(name, nodes)

    def test_unknown_profile(self):
        with pytest.raises(FaultSpecError, match="unknown chaos profile"):
            profile_rules("meteor-strike", ["osu0"])


class TestFaultInjector:
    def test_times_caps_firing(self):
        inj = FaultInjector([FaultRule("raise-on-open", times=2)])
        for _ in range(2):
            with pytest.raises(InjectedFault):
                inj.on_open("osu0", "a.bin")
        inj.on_open("osu0", "a.bin")  # exhausted: no raise
        assert inj.injected == 2

    def test_seeded_probability_is_deterministic(self):
        def pattern(seed):
            inj = FaultInjector(
                [FaultRule("short-read", probability=0.5)], seed=seed
            )
            return [
                len(inj.on_read("osu0", "a.bin", 0, b"abcd"))
                for _ in range(64)
            ]

        assert pattern(3) == pattern(3)
        assert pattern(3) != pattern(4)

    def test_short_read_truncates(self):
        inj = FaultInjector([FaultRule("short-read", short_by=3)])
        assert inj.on_read("osu0", "a.bin", 0, b"abcdef") == b"abc"

    def test_slow_read_sleeps_outside_lock(self):
        slept = []
        inj = FaultInjector(
            [FaultRule("slow-read", delay=0.25)], sleep=slept.append
        )
        data = inj.on_read("osu0", "a.bin", 0, b"xy")
        assert data == b"xy"
        assert slept == [0.25]

    def test_fail_after_chunks(self):
        inj = FaultInjector([FaultRule("fail-after-chunks", after_chunks=2)])
        inj.on_read("osu0", "a.bin", 0, b"x")
        inj.on_read("osu0", "b.bin", 0, b"y")
        with pytest.raises(InjectedFault, match="fail-after-chunks"):
            inj.on_read("osu0", "c.bin", 0, b"z")

    def test_node_down_fires_at_mount(self):
        inj = FaultInjector([FaultRule("node-down", node="osu1")])
        mount = inj.wrap(lambda node, path: f"/{node}/{path}")
        assert mount("osu0", "a.bin") == "/osu0/a.bin"
        with pytest.raises(InjectedFault, match="unreachable"):
            mount("osu1", "a.bin")
        assert inj.log == [
            {"kind": "node-down", "node": "osu1", "path": "a.bin", "op": "mount"}
        ]

    def test_transfer_faults_match_client_pseudo_node(self):
        inj = FaultInjector([FaultRule("node-down", node="client:1")])
        inj.on_transfer(0)
        with pytest.raises(InjectedFault, match="client:1"):
            inj.on_transfer(1)

    def test_report_counts_by_kind(self):
        inj = FaultInjector([FaultRule("short-read", times=2)])
        inj.on_read("osu0", "a.bin", 0, b"abcd")
        inj.on_read("osu0", "a.bin", 0, b"abcd")
        assert inj.counts() == {"short-read": 2}
        assert "short-read x2" in inj.report()


# ---------------------------------------------------------------------------
# Degraded execution through QueryService
# ---------------------------------------------------------------------------

CHAOS_CONFIG = IparsConfig(
    num_rels=2, num_times=6, cells_per_node=20, num_nodes=4
)


@pytest.fixture(scope="module")
def chaos_env(tmp_path_factory):
    root = tmp_path_factory.mktemp("chaos")
    cluster = VirtualCluster.create(str(root), CHAOS_CONFIG.num_nodes)
    text, _ = ipars.generate(CHAOS_CONFIG, "L0", cluster.mount())
    dataset = GeneratedDataset(text)
    clean = QueryService(dataset, cluster)
    yield cluster, dataset, clean
    clean.close()


def chaos_service(chaos_env, rules, seed=7):
    cluster, dataset, _ = chaos_env
    return QueryService(
        dataset, cluster, fault_injector=FaultInjector(rules, seed=seed)
    )


LOCAL = ExecOptions(remote=False)


def rows_subset(small, big):
    """Every row of ``small`` appears in ``big`` (as multisets)."""
    a = small.to_structured()
    b = big.to_structured()
    a.sort()
    b.sort()
    return bool(np.isin(a, b).all())


class TestDegradedExecution:
    SQL = "SELECT REL, TIME, X, SOIL FROM IparsData"

    def test_node_down_degrades_with_surviving_rows(self, chaos_env):
        _, _, clean_service = chaos_env
        clean = clean_service.submit(self.SQL, LOCAL)
        lost_rows = clean.per_node_stats["osu1"].rows_output
        assert lost_rows > 0

        with chaos_service(
            chaos_env, [FaultRule("node-down", node="osu1")]
        ) as service:
            result = service.submit(
                self.SQL,
                LOCAL.replace(
                    retries=2, retry_backoff=0.001, allow_partial=True,
                    trace=True,
                ),
            )
        assert result.degraded
        assert result.failed_nodes == ["osu1"]
        assert result.num_rows == clean.num_rows - lost_rows
        # The surviving rows are correct, not merely the right count.
        assert rows_subset(result.table, clean.table)
        assert "DEGRADED" in result.summary()

        # (a) retries with backoff recorded as tracer spans.
        retries = result.trace.find("retry")
        assert [s.tags["attempt"] for s in retries] == [1, 2]
        assert [s.tags["backoff"] for s in retries] == [0.001, 0.002]
        (failure,) = result.trace.find("node_failure")
        assert failure.tags["node"] == "osu1"
        counters = result.trace.metrics.as_dict()["counters"]
        assert counters["retries.attempted"] == 2
        assert counters["nodes.failed"] == 1
        assert counters["faults.injected"] == 3  # one per attempt

    def test_chaos_run_is_deterministic(self, chaos_env):
        rules = [FaultRule("short-read", node="osu2", probability=0.5)]
        options = LOCAL.replace(
            retries=3, retry_backoff=0.0, allow_partial=True
        )
        outcomes = []
        for _ in range(2):
            with chaos_service(chaos_env, rules, seed=11) as service:
                result = service.submit(self.SQL, options)
                outcomes.append(
                    (
                        result.num_rows,
                        result.failed_nodes,
                        service.fault_injector.log,
                    )
                )
        assert outcomes[0] == outcomes[1]

    def test_allow_partial_false_raises_typed_error(self, chaos_env):
        with chaos_service(
            chaos_env, [FaultRule("node-down", node="osu1")]
        ) as service:
            with pytest.raises(NodeFailureError) as info:
                service.submit(self.SQL, LOCAL.replace(retries=1))
        assert isinstance(info.value, StormError)
        assert info.value.node == "osu1"
        assert info.value.attempts == 2
        assert isinstance(info.value.cause, InjectedFault)

    def test_serial_execution_degrades_too(self, chaos_env):
        with chaos_service(
            chaos_env, [FaultRule("node-down", node="osu0")]
        ) as service:
            result = service.submit(
                self.SQL, LOCAL.replace(parallel=False, allow_partial=True)
            )
        assert result.degraded and result.failed_nodes == ["osu0"]

    def test_flaky_open_recovers_fully(self, chaos_env):
        _, _, clean_service = chaos_env
        clean = clean_service.submit(self.SQL, LOCAL)
        with chaos_service(
            chaos_env, [FaultRule("raise-on-open", node="osu0", times=1)]
        ) as service:
            result = service.submit(
                self.SQL, LOCAL.replace(retries=1, trace=True)
            )
        assert not result.degraded and result.failed_nodes == []
        assert_tables_equal(
            result.table.canonical(), clean.table.canonical()
        )
        assert len(result.trace.find("retry")) == 1
        assert result.trace.metrics.as_dict()["counters"]["faults.injected"] == 1

    def test_short_read_surfaces_and_recovers(self, chaos_env):
        _, _, clean_service = chaos_env
        clean = clean_service.submit(self.SQL, LOCAL)
        with chaos_service(
            chaos_env, [FaultRule("short-read", node="osu3", times=1)]
        ) as service:
            result = service.submit(self.SQL, LOCAL.replace(retries=1))
        assert not result.degraded
        assert result.num_rows == clean.num_rows

    def test_node_timeout_abandons_hung_node(self, chaos_env):
        with chaos_service(
            chaos_env, [FaultRule("slow-read", node="osu2", delay=0.4)]
        ) as service:
            result = service.submit(
                self.SQL,
                LOCAL.replace(node_timeout=0.05, allow_partial=True),
            )
        assert result.degraded
        assert result.failed_nodes == ["osu2"]

    def test_exhausted_fault_budget_leaves_service_usable(self, chaos_env):
        _, _, clean_service = chaos_env
        clean = clean_service.submit(self.SQL, LOCAL)
        with chaos_service(
            chaos_env, [FaultRule("node-down", node="osu1", times=1)]
        ) as service:
            first = service.submit(self.SQL, LOCAL.replace(allow_partial=True))
            assert first.degraded
            second = service.submit(self.SQL, LOCAL)
            assert not second.degraded
            assert second.num_rows == clean.num_rows


class TestTransferFaults:
    SQL = "SELECT REL, TIME FROM IparsData WHERE TIME <= 2"

    def test_transfer_retry_recovers(self, chaos_env):
        with chaos_service(
            chaos_env, [FaultRule("node-down", node="client:0", times=1)]
        ) as service:
            result = service.submit(
                self.SQL,
                ExecOptions(num_clients=2, retries=1, trace=True),
            )
        assert not result.degraded
        assert len(result.deliveries) == 2
        (retry,) = result.trace.find("retry")
        assert retry.tags["node"] == "_transfer"

    def test_transfer_failure_degrades(self, chaos_env):
        with chaos_service(
            chaos_env, [FaultRule("node-down", node="client:1")]
        ) as service:
            result = service.submit(
                self.SQL,
                ExecOptions(num_clients=2, allow_partial=True, trace=True),
            )
        assert result.degraded
        assert result.failed_nodes == ["_transfer"]
        assert result.deliveries == []
        # Extraction itself succeeded: the merged table is intact.
        assert result.num_rows > 0

    def test_transfer_failure_raises_without_partial(self, chaos_env):
        with chaos_service(
            chaos_env, [FaultRule("node-down", node="client:1")]
        ) as service:
            with pytest.raises(NodeFailureError, match="_transfer"):
                service.submit(self.SQL, ExecOptions(num_clients=2))
