"""Fuzz the textual frontends: garbage in, clean errors out.

Both parsers face administrator- and user-authored text; whatever comes
in, they must raise the library's own error types — never an internal
IndexError/KeyError/RecursionError — and never hang.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.metadata import parse_descriptor
from repro.sql import parse_query

_sql_tokens = st.sampled_from([
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "BETWEEN",
    "*", ",", "(", ")", "<", "<=", ">", "=", ";", "X", "TIME", "T",
    "SPEED", "1", "3.5", "'s'", "IparsData",
])


@given(st.lists(_sql_tokens, max_size=25).map(" ".join))
@settings(max_examples=400, deadline=None)
def test_sql_parser_never_crashes(text):
    try:
        parse_query(text)
    except ReproError:
        pass  # clean library error: fine


@given(st.text(max_size=120))
@settings(max_examples=400, deadline=None)
def test_sql_parser_survives_arbitrary_text(text):
    try:
        parse_query(text)
    except ReproError:
        pass


_desc_tokens = st.sampled_from([
    "[S]", "[D]", "X = float", "T = int", "DatasetDescription = S",
    "DIR[0] = n/d", "DATASET", '"D"', "{", "}", "DATASPACE", "DATAINDEX",
    "DATA", "LOOP", "T", "X", "1:5:1", "DIR[0]/f", "DATATYPE", "//c",
    "$A", "(", ")",
])


@given(st.lists(_desc_tokens, max_size=30).map("\n".join))
@settings(max_examples=300, deadline=None)
def test_descriptor_parser_never_crashes(text):
    try:
        parse_descriptor(text)
    except ReproError:
        pass


@given(st.text(max_size=200))
@settings(max_examples=300, deadline=None)
def test_descriptor_parser_survives_arbitrary_text(text):
    try:
        parse_descriptor(text)
    except ReproError:
        pass


@given(st.text(max_size=150))
@settings(max_examples=200, deadline=None)
def test_xml_parser_survives_arbitrary_text(text):
    from repro.metadata import xml_to_descriptor

    try:
        xml_to_descriptor("<descriptor>" + text + "</descriptor>")
    except ReproError:
        pass
