"""Unit + property tests for the 1-D interval index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.range_index import MultiAttrRangeIndex, RangeIndex
from repro.sql.ranges import IntervalSet


class TestRangeIndex:
    @pytest.fixture
    def index(self):
        # intervals: a=[0,10], b=[5,15], c=[20,30], d=[12,12]
        return RangeIndex(
            [(0, 10, "a"), (5, 15, "b"), (20, 30, "c"), (12, 12, "d")]
        )

    def test_stab(self, index):
        assert set(index.stab(7)) == {"a", "b"}
        assert set(index.stab(12)) == {"b", "d"}
        assert index.stab(50) == []

    def test_overlapping(self, index):
        assert set(index.overlapping(9, 21)) == {"a", "b", "d", "c"}
        assert set(index.overlapping(16, 19)) == set()

    def test_boundary_inclusive(self, index):
        assert "a" in index.stab(0)
        assert "a" in index.stab(10)

    def test_overlapping_set(self, index):
        allowed = IntervalSet.points([7, 25])
        assert set(index.overlapping_set(allowed)) == {"a", "b", "c"}

    def test_overlapping_set_dedupes(self, index):
        allowed = IntervalSet([])
        allowed = IntervalSet.of(0, 1).union(IntervalSet.of(2, 3))
        hits = index.overlapping_set(allowed)
        assert hits.count("a") == 1

    def test_empty_index(self):
        index = RangeIndex([])
        assert index.stab(1) == []
        assert len(index) == 0


@given(
    st.lists(st.tuples(st.integers(-50, 50), st.integers(0, 20)), max_size=40),
    st.integers(-60, 60),
    st.integers(0, 25),
)
@settings(max_examples=250, deadline=None)
def test_overlap_matches_brute_force(raw, qlo, width):
    entries = [(lo, lo + w, i) for i, (lo, w) in enumerate(raw)]
    index = RangeIndex(entries)
    got = set(index.overlapping(qlo, qlo + width))
    expected = {
        i for lo, hi, i in entries if not (hi < qlo or lo > qlo + width)
    }
    assert got == expected


class TestMultiAttrRangeIndex:
    @pytest.fixture
    def index(self):
        payloads = ["f0", "f1", "f2", "f3"]
        hulls = [
            {"REL": (0, 0), "TIME": (1, 100)},
            {"REL": (1, 1), "TIME": (1, 100)},
            {"REL": (0, 0), "TIME": (101, 200)},
            {"X": (5, 10)},  # no REL/TIME hull: unconstrained by them
        ]
        return MultiAttrRangeIndex(payloads, hulls)

    def test_select_single_attr(self, index):
        hits = index.select({"REL": IntervalSet.points([0])})
        assert hits == ["f0", "f2", "f3"]

    def test_select_conjunction(self, index):
        hits = index.select(
            {"REL": IntervalSet.points([0]), "TIME": IntervalSet.of(150, 160)}
        )
        assert hits == ["f2", "f3"]

    def test_unindexed_attr_ignored(self, index):
        hits = index.select({"GHOST": IntervalSet.of(0, 1)})
        assert len(hits) == 4

    def test_uncovered_payloads_survive(self, index):
        # f3 has no REL hull, so a REL constraint cannot exclude it.
        hits = index.select({"REL": IntervalSet.points([7])})
        assert hits == ["f3"]

    def test_empty_selection_shortcircuits(self, index):
        hits = index.select(
            {"X": IntervalSet.of(100, 200), "REL": IntervalSet.points([0])}
        )
        assert "f3" not in hits

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            MultiAttrRangeIndex(["a"], [])

    def test_matches_planner_match_file(self, paper_dataset):
        """The indexed file selection equals brute-force match_file."""
        from repro.core import CompiledDataset
        from repro.core.analysis import match_file
        from repro.sql import parse_where
        from repro.sql.ranges import extract_ranges

        text, _ = paper_dataset
        dataset = CompiledDataset(text)
        hulls = []
        for file in dataset.files:
            hulls.append(
                {n: (iv.lo, iv.hi) for n, iv in file.implicit_intervals().items()}
            )
        index = MultiAttrRangeIndex(dataset.files, hulls)
        for text_pred in [
            "REL IN (0, 1) AND TIME >= 1 AND TIME <= 10",
            "REL = 3",
            "TIME > 18",
            "SOIL > 0.5",
        ]:
            ranges = extract_ranges(parse_where(text_pred))
            expected = [f for f in dataset.files if match_file(f, ranges)]
            assert index.select(ranges) == expected
