"""Unit + property tests for the STR-packed R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.index.rtree import RTree, boxes_intersect, box_union


def box2(x0, x1, y0, y1):
    return ((x0, x1), (y0, y1))


class TestBoxOps:
    def test_intersect(self):
        assert boxes_intersect(box2(0, 2, 0, 2), box2(1, 3, 1, 3))
        assert boxes_intersect(box2(0, 2, 0, 2), box2(2, 3, 2, 3))  # touching
        assert not boxes_intersect(box2(0, 1, 0, 1), box2(2, 3, 0, 1))

    def test_union(self):
        assert box_union(box2(0, 1, 5, 6), box2(2, 3, 1, 2)) == box2(0, 3, 1, 6)


class TestRTree:
    def test_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.search(box2(0, 1, 0, 1))) == []

    def test_single(self):
        tree = RTree.bulk_load([(box2(0, 1, 0, 1), "a")])
        assert list(tree.search(box2(0.5, 2, 0.5, 2))) == ["a"]
        assert list(tree.search(box2(5, 6, 5, 6))) == []

    def test_grid_of_boxes(self):
        entries = [
            (box2(i, i + 1, j, j + 1), (i, j))
            for i in range(10)
            for j in range(10)
        ]
        tree = RTree.bulk_load(entries, fanout=4)
        assert len(tree) == 100
        hits = set(tree.search(box2(2.5, 4.5, 2.5, 4.5)))
        expected = {(i, j) for i in (2, 3, 4) for j in (2, 3, 4)}
        assert hits == expected

    def test_search_point(self):
        entries = [(box2(i, i + 2, 0, 1), i) for i in range(10)]
        tree = RTree.bulk_load(entries, fanout=3)
        assert set(tree.search_point((4.5, 0.5))) == {3, 4}

    def test_height_grows_logarithmically(self):
        entries = [(box2(i, i + 1, 0, 1), i) for i in range(1000)]
        tree = RTree.bulk_load(entries, fanout=16)
        assert tree.height <= 4

    def test_dimension_mismatch(self):
        tree = RTree.bulk_load([(box2(0, 1, 0, 1), "a")])
        with pytest.raises(ReproError, match="dims"):
            list(tree.search(((0, 1),)))

    def test_inconsistent_entry_dims(self):
        with pytest.raises(ReproError, match="dimensionality"):
            RTree.bulk_load([(box2(0, 1, 0, 1), "a"), (((0, 1),), "b")])

    def test_inverted_box_rejected(self):
        with pytest.raises(ReproError, match="inverted"):
            RTree.bulk_load([(box2(2, 1, 0, 1), "a")])

    def test_bad_fanout(self):
        with pytest.raises(ReproError, match="fanout"):
            RTree.bulk_load([(box2(0, 1, 0, 1), "a")], fanout=1)

    def test_4d_boxes(self):
        entries = [
            ((((i, i + 1)) , (0, 1), (0, 1), (j, j + 1)), (i, j))
            for i in range(4)
            for j in range(4)
        ]
        tree = RTree.bulk_load(entries, fanout=3)
        hits = set(tree.search(((0, 0.5), (0, 1), (0, 1), (2.5, 3.5))))
        assert hits == {(0, 2), (0, 3)}


@given(
    st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 10, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 10, allow_nan=False),
        ),
        max_size=60,
    ),
    st.tuples(
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 30, allow_nan=False),
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 30, allow_nan=False),
    ),
    st.integers(2, 8),
)
@settings(max_examples=200, deadline=None)
def test_rtree_matches_brute_force(raw_entries, raw_query, fanout):
    """R-tree search returns exactly the brute-force intersection set."""
    entries = [
        (box2(x, x + w, y, y + h), i)
        for i, (x, w, y, h) in enumerate(raw_entries)
    ]
    query = box2(
        raw_query[0], raw_query[0] + raw_query[1],
        raw_query[2], raw_query[2] + raw_query[3],
    )
    tree = RTree.bulk_load(entries, fanout=fanout)
    got = set(tree.search(query))
    expected = {i for box, i in entries if boxes_intersect(box, query)}
    assert got == expected
