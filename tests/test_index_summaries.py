"""Tests for per-chunk min/max summaries (the Titan spatial index)."""

import numpy as np
import pytest

from repro.core import CompiledDataset, Extractor, Virtualizer
from repro.core.stats import IOStats
from repro.errors import ReproError
from repro.index import (
    MinMaxSummaries,
    build_summaries,
    load_or_build_summaries,
    summaries_path,
)


class TestBuild:
    def test_one_summary_per_chunk(self, titan_small):
        config, _, _, summaries = titan_small
        assert len(summaries) == config.total_chunks
        assert set(summaries.attrs) == {"X", "Y", "Z", "TIME"}

    def test_bounds_are_correct(self, titan_small):
        config, text, mount, summaries = titan_small
        dataset = CompiledDataset(text)
        with Extractor(mount) as extractor:
            for afc in dataset.index({})[:5]:
                chunk = afc.chunks[0]
                cols = extractor.extract_afc(
                    afc, ["X", "Y", "TIME"], IOStats()
                )
                bounds = summaries.bounds(chunk.key)
                assert bounds["X"][0] == pytest.approx(float(cols["X"].min()))
                assert bounds["X"][1] == pytest.approx(float(cols["X"].max()))
                assert bounds["TIME"][0] == float(cols["TIME"].min())

    def test_unknown_key(self, titan_small):
        _, _, _, summaries = titan_small
        assert summaries.bounds(("nope", "x", 0)) is None

    def test_requires_indexed_attrs(self, paper_dataset):
        # The IPARS example indexes only implicit attributes.
        text, mount = paper_dataset
        dataset = CompiledDataset(text)
        with pytest.raises(ReproError, match="no stored indexed"):
            build_summaries(dataset, mount)

    def test_explicit_attr_override(self, titan_small):
        _, text, mount, _ = titan_small
        dataset = CompiledDataset(text)
        summaries = build_summaries(dataset, mount, attrs=["S1"])
        assert set(summaries.attrs) == {"S1"}

    def test_unknown_attr_rejected(self, titan_small):
        _, text, mount, _ = titan_small
        dataset = CompiledDataset(text)
        with pytest.raises(ReproError, match="unknown"):
            build_summaries(dataset, mount, attrs=["GHOST"])


class TestPersistence:
    def test_save_load_roundtrip(self, titan_small, tmp_path):
        _, _, _, summaries = titan_small
        path = str(tmp_path / "summ.json")
        summaries.save(path)
        loaded = MinMaxSummaries.load(path)
        assert len(loaded) == len(summaries)
        key = next(iter(loaded._bounds))
        assert loaded.bounds(key) == summaries.bounds(key)

    def test_load_or_build(self, titan_small, tmp_path):
        _, text, mount, _ = titan_small
        dataset = CompiledDataset(text)
        root = str(tmp_path)
        first = load_or_build_summaries(dataset, mount, root)
        assert len(first) > 0
        import os

        assert os.path.exists(summaries_path(root, dataset.descriptor.name))
        second = load_or_build_summaries(dataset, mount, root)
        assert len(second) == len(first)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "chunks": []}')
        with pytest.raises(ReproError, match="version"):
            MinMaxSummaries.load(str(path))


class TestPruning:
    def test_spatial_query_reads_fewer_chunks(self, titan_small):
        config, text, mount, summaries = titan_small
        with Virtualizer(text, mount, summaries=summaries) as with_index:
            with Virtualizer(text, mount) as without_index:
                sql = (
                    "SELECT * FROM TitanData WHERE X >= 0 AND X <= "
                    f"{config.extent[0] / 4}"
                )
                plan_indexed = with_index.plan(sql)
                plan_plain = without_index.plan(sql)
                assert len(plan_indexed.afcs) < len(plan_plain.afcs)
                # and the results are identical
                a = with_index.query(sql).canonical()
                b = without_index.query(sql).canonical()
                assert a.num_rows == b.num_rows
                np.testing.assert_array_equal(a["X"], b["X"])

    def test_pruning_never_loses_rows(self, titan_small):
        config, text, mount, summaries = titan_small
        queries = [
            "SELECT * FROM TitanData WHERE X < 1000 AND Y < 1000",
            "SELECT * FROM TitanData WHERE TIME >= 5000",
            "SELECT X FROM TitanData WHERE Z > 350 AND S1 < 0.3",
        ]
        with Virtualizer(text, mount, summaries=summaries) as vi:
            with Virtualizer(text, mount) as vp:
                for sql in queries:
                    assert vi.query(sql).num_rows == vp.query(sql).num_rows

    def test_rtree_over_chunks(self, titan_small):
        config, _, _, summaries = titan_small
        tree = summaries.rtree(["X", "Y"])
        assert len(tree) == config.total_chunks
        hits = summaries.chunks_overlapping(
            ["X", "Y"], ((0, config.extent[0] / 4), (0, config.extent[1] / 4))
        )
        assert 0 < len(hits) < config.total_chunks


class TestShortTailChunk:
    """Regression: a truncated final chunk used to crash build_summaries
    (np.frombuffer raises when the buffer is not a multiple of the record
    size); now partial trailing records are clamped away."""

    @pytest.fixture()
    def truncated(self, tmp_path):
        from repro.core import local_mount
        from repro.datasets import TitanConfig, titan

        config = TitanConfig(
            chunks_x=2, chunks_y=2, chunks_z=1, chunks_t=1,
            elems_per_chunk=50, num_nodes=1,
        )
        mount = local_mount(str(tmp_path))
        text, _ = titan.generate(config, mount)
        dataset = CompiledDataset(text)
        # Chop the last file mid-record: drop half a record's bytes.
        afcs = dataset.index({})
        chunk = afcs[-1].chunks[-1]
        path = mount(chunk.node, chunk.path)
        size = __import__("os").path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - chunk.bytes_per_row // 2)
        return config, dataset, mount

    def test_build_does_not_crash_on_partial_record(self, truncated):
        config, dataset, mount = truncated
        summaries = build_summaries(dataset, mount)
        assert len(summaries) == config.total_chunks

    def test_whole_records_of_short_chunk_still_summarised(self, truncated):
        _, dataset, mount = truncated
        summaries = build_summaries(dataset, mount)
        chunk = dataset.index({})[-1].chunks[-1]
        bounds = summaries.bounds(chunk.key)
        assert bounds is not None and "X" in bounds
        assert bounds["X"][0] <= bounds["X"][1]


class TestAttrsAcrossLayouts:
    """Regression: ``attrs`` used to report an arbitrary first chunk's
    keys and the single-slot rtree cache thrashed on alternating attr
    tuples."""

    def make(self):
        return MinMaxSummaries({
            ("n0", "a.dat", 0): {"X": (0.0, 1.0), "Y": (0.0, 2.0)},
            ("n0", "b.dat", 0): {"Y": (1.0, 3.0), "Z": (5.0, 9.0)},
        })

    def test_attrs_is_sorted_union(self):
        assert self.make().attrs == ("X", "Y", "Z")
        # Insertion order of the bounds dict must not matter.
        flipped = MinMaxSummaries({
            ("n0", "b.dat", 0): {"Z": (5.0, 9.0)},
            ("n0", "a.dat", 0): {"X": (0.0, 1.0)},
        })
        assert flipped.attrs == ("X", "Z")

    def test_rtree_cache_not_thrashed_by_alternating_attrs(self, titan_small):
        _, _, _, summaries = titan_small
        xy_1 = summaries.rtree(["X", "Y"])
        z_1 = summaries.rtree(["Z"])
        xy_2 = summaries.rtree(["X", "Y"])
        z_2 = summaries.rtree(["Z"])
        # Same objects: alternating lookups reuse both cached trees
        # instead of rebuilding on every switch.
        assert xy_1 is xy_2
        assert z_1 is z_2

    def test_rtree_missing_attr_still_raises(self):
        with pytest.raises(ReproError, match="no summary"):
            self.make().rtree(["X", "Z"])
