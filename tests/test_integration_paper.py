"""The paper's Section 4 walkthrough at the paper's own scale.

The running example: 4 nodes, 100 grid points per node, 500 time steps,
4 realizations; query ``REL in (0,1) AND TIME in [1,100]``.  The paper
states the intermediate results explicitly; this test asserts every one
of them at plan level (no data on disk is needed to plan).
"""

import pytest

from repro.core import CompiledDataset, GeneratedDataset
from repro.sql import parse_where
from repro.sql.ranges import extract_ranges

PAPER_SCALE_DESCRIPTOR = """
[IPARS]
REL = short int
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars

DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET ipars1 DATASET ipars2 }

  DATASET "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 {
        X Y Z
      }
    }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }
  }

  DATASET "ipars2" {
    DATASPACE {
      LOOP TIME 1:500:1 {
        LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 {
          SOIL SGAS
        }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }
  }
}
"""

WALKTHROUGH_QUERY = "REL IN (0, 1) AND TIME >= 1 AND TIME <= 100"


@pytest.fixture(scope="module")
def dataset():
    return CompiledDataset(PAPER_SCALE_DESCRIPTOR)


class TestPaperWalkthrough:
    def test_file_enumeration(self, dataset):
        """'ipars1' comprises 4 files; 'ipars2' comprises 16 files."""
        coords = [f for f in dataset.files if f.leaf_name == "ipars1"]
        data = [f for f in dataset.files if f.leaf_name == "ipars2"]
        assert len(coords) == 4
        assert len(data) == 16

    def test_grid_ranges_per_directory(self, dataset):
        """'grid-points 1 through 100 in the file residing on directory 0,
        grid-points 101 through 200 on directory 1, and so on.'"""
        for file in dataset.files:
            if file.leaf_name != "ipars1":
                continue
            hull = file.implicit_intervals()["GRID"]
            assert hull.lo == file.dir_index * 100 + 1
            assert hull.hi == (file.dir_index + 1) * 100

    def test_sixteen_consistent_groups(self, dataset):
        """Full product: {DIR[k]/COORD, DIR[k]/DATAr} for k, r in 0..3."""
        assert len(dataset.groups) == 16

    def test_eight_groups_survive_the_query(self, dataset):
        """'eight such groups are put in the set T, which are
        {DIR[k]/COORD, DIR[k]/DATA0} and {DIR[k]/COORD, DIR[k]/DATA1},
        with k ranging from 0 to 3.'"""
        ranges = extract_ranges(parse_where(WALKTHROUGH_QUERY))
        from repro.core.analysis import match_file

        surviving = [
            g for g in dataset.groups
            if all(match_file(f, ranges) for f in g.files)
        ]
        assert len(surviving) == 8
        combos = {
            (g.files[0].dir_index, g.env["REL"]) for g in surviving
        }
        assert combos == {(k, r) for k in range(4) for r in (0, 1)}

    def test_five_hundred_afcs_per_group(self, dataset):
        """'a total of 500 such aligned file chunk sets can be formed from
        each set in T.'"""
        afcs = dataset.index({})
        assert len(afcs) == 16 * 500

    def test_one_hundred_survive_pruning(self, dataset):
        """'By using the query range, we can see that only 100 of these
        should be processed.'"""
        ranges = extract_ranges(parse_where(WALKTHROUGH_QUERY))
        afcs = dataset.index(ranges)
        assert len(afcs) == 8 * 100
        per_group = {}
        for afc in afcs:
            key = tuple(sorted(afc.constant_map.items()))
            per_group.setdefault(
                (afc.constant_map["DIRID"], afc.constant_map["REL"]), 0
            )
            per_group[(afc.constant_map["DIRID"], afc.constant_map["REL"])] += 1
        assert set(per_group.values()) == {100}

    def test_afc_byte_geometry(self, dataset):
        """Each AFC: 100 rows; COORDS at offset 0 with 12 bytes/row; the
        DATA section for TIME=t at offset (t-1)*100*8 with 8 bytes/row."""
        ranges = extract_ranges(parse_where(WALKTHROUGH_QUERY))
        afc = next(
            a for a in dataset.index(ranges)
            if a.constant_map["TIME"] == 42 and a.constant_map["DIRID"] == 2
        )
        assert afc.num_rows == 100
        coords_chunk, data_chunk = afc.chunks
        assert coords_chunk.bytes_per_row == 12
        assert coords_chunk.offset == 0
        assert data_chunk.bytes_per_row == 8
        assert data_chunk.offset == 41 * 100 * 8

    def test_generated_matches_at_paper_scale(self, dataset):
        generated = GeneratedDataset(PAPER_SCALE_DESCRIPTOR)
        ranges = extract_ranges(parse_where(WALKTHROUGH_QUERY))
        assert len(generated.index(ranges)) == len(dataset.index(ranges))

    def test_dataset_volume_matches_paper_shape(self, dataset):
        """17 GB-scale in the paper; here the formula must hold exactly:
        coords 4 x 100 x 12B; data 16 x 500 x 100 x 8B."""
        assert dataset.total_data_bytes == 4 * 100 * 12 + 16 * 500 * 100 * 8
