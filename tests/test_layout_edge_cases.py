"""End-to-end tests of unusual-but-legal layouts.

Strided loops, three-level nesting, subdirectory file templates,
big-endian data, headers before arrays, and per-strip projection all have
to survive the full write -> describe -> query pipeline.
"""

import numpy as np
import pytest

from repro.core import CompiledDataset, GeneratedDataset, Virtualizer, local_mount
from repro.datasets.writers import write_dataset
from repro.metadata import parse_descriptor


def materialise(text, tmp_path, value_fn):
    root = str(tmp_path)
    mount = local_mount(root)
    dataset = CompiledDataset(text)
    write_dataset(dataset, mount, value_fn)
    return Virtualizer(text, mount)


class TestStridedLoops:
    TEXT = """
[S]
T = int
A = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATAINDEX { T }
  DATASPACE {
    LOOP T 10:50:10 {
      LOOP G 0:4:2 { A }
    }
  }
  DATA { DIR[0]/f }
}
"""

    def test_strided_values_and_counts(self, tmp_path):
        v = materialise(
            self.TEXT, tmp_path,
            lambda attr, env, coords: coords["T"] * 100 + coords["G"],
        )
        table = v.query("SELECT T, A FROM D")
        # T in {10..50 step 10}, G in {0, 2, 4}: 15 rows.
        assert table.num_rows == 15
        assert sorted(set(table["T"].tolist())) == [10, 20, 30, 40, 50]
        expected = sorted(
            t * 100 + g for t in range(10, 51, 10) for g in (0, 2, 4)
        )
        assert sorted(table["A"].tolist()) == expected

    def test_strided_pruning(self, tmp_path):
        v = materialise(
            self.TEXT, tmp_path,
            lambda attr, env, coords: coords["T"] * 100 + coords["G"],
        )
        plan = v.plan("SELECT A FROM D WHERE T = 30")
        assert len(plan.afcs) == 1
        plan = v.plan("SELECT A FROM D WHERE T = 35")  # off-lattice
        assert len(plan.afcs) == 0
        # ...and strict bounds respect the stride.
        plan = v.plan("SELECT A FROM D WHERE T > 30 AND T < 50")
        assert len(plan.afcs) == 1


class TestThreeLevelNesting:
    TEXT = """
[S]
RUN = int
STEP = int
A = float
B = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATAINDEX { RUN STEP }
  DATASPACE {
    LOOP RUN 0:2:1 {
      LOOP STEP 1:4:1 {
        LOOP CELL 0:2:1 { A B }
      }
    }
  }
  DATA { DIR[0]/cube }
}
"""

    def test_full_enumeration(self, tmp_path):
        v = materialise(
            self.TEXT, tmp_path,
            lambda attr, env, coords: (
                coords["RUN"] * 1000 + coords["STEP"] * 10 + coords["CELL"]
                + (0.5 if attr == "B" else 0.0)
            ),
        )
        table = v.query("SELECT * FROM D")
        assert table.num_rows == 3 * 4 * 3
        # Spot check one row's values.
        t = v.query("SELECT A, B FROM D WHERE RUN = 2 AND STEP = 3")
        assert sorted(t["A"].tolist()) == [2030.0, 2031.0, 2032.0]
        np.testing.assert_allclose(np.sort(t["B"]), np.sort(t["A"]) + 0.5)

    def test_both_index_attrs_prune(self, tmp_path):
        v = materialise(
            self.TEXT, tmp_path, lambda attr, env, coords: coords["CELL"]
        )
        plan = v.plan("SELECT A FROM D WHERE RUN = 1 AND STEP >= 2 AND STEP <= 3")
        assert len(plan.afcs) == 2
        assert plan.planned_rows == 6


class TestSubdirectoryTemplates:
    TEXT = """
[S]
RUN = int
A = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATAINDEX { RUN }
  DATASPACE { LOOP G 0:3:1 { A } }
  DATA { DIR[0]/run$RUN/values.bin RUN = 0:2:1 }
}
"""

    def test_nested_paths(self, tmp_path):
        v = materialise(
            self.TEXT, tmp_path,
            lambda attr, env, coords: env["RUN"] * 10 + coords["G"],
        )
        table = v.query("SELECT RUN, A FROM D WHERE RUN = 2")
        assert table.num_rows == 4
        assert sorted(table["A"].tolist()) == [20.0, 21.0, 22.0, 23.0]
        import os

        assert os.path.exists(str(tmp_path / "n0" / "d" / "run1" / "values.bin"))


class TestBigEndianData:
    TEXT = """
[S]
T = int
A = float64

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATASPACE { LOOP T 1:5:1 { A } }
  DATA { DIR[0]/f }
}
"""

    def test_mixed_widths_roundtrip(self, tmp_path):
        # float64 storage through the schema alias; T implicit.
        v = materialise(
            self.TEXT, tmp_path,
            lambda attr, env, coords: coords["T"] * 1.5,
        )
        table = v.query("SELECT T, A FROM D")
        assert table["A"].dtype == np.dtype("<f8")
        np.testing.assert_allclose(np.sort(table["A"]), np.arange(1, 6) * 1.5)


class TestHeaderRecord:
    TEXT = """
[S]
VERSION = int
A = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATASPACE {
    VERSION
    LOOP G 0:9:1 { A }
  }
  DATA { DIR[0]/with_header }
}
"""

    def test_header_joins_every_row(self, tmp_path):
        v = materialise(
            self.TEXT, tmp_path,
            lambda attr, env, coords: (
                np.int64(7) if attr == "VERSION" else coords["G"] * 2
            ),
        )
        table = v.query("SELECT VERSION, A FROM D")
        assert table.num_rows == 10
        assert set(table["VERSION"].tolist()) == {7}
        # Header + array alignment: single-row AFCs are correct, if slow.
        plan = v.plan("SELECT VERSION FROM D")
        assert all(afc.num_rows == 1 for afc in plan.afcs)


class TestGeneratedMatchesInterpretedOnEdgeCases:
    @pytest.mark.parametrize(
        "text_attr",
        ["TestStridedLoops", "TestThreeLevelNesting", "TestHeaderRecord"],
    )
    def test_same_plans(self, text_attr, tmp_path):
        text = globals()[text_attr].TEXT
        interpreted = CompiledDataset(text)
        generated = GeneratedDataset(text)
        a = interpreted.index({})
        b = generated.index({})
        key = lambda afc: (
            afc.num_rows,
            tuple((c.path, c.offset, c.bytes_per_row) for c in afc.chunks),
            tuple(sorted(afc.constants)),
        )
        assert sorted(map(key, a)) == sorted(map(key, b))
