"""Tests for the programmatic descriptor builder."""

import numpy as np
import pytest

from repro.core import CompiledDataset, Virtualizer, local_mount
from repro.datasets.writers import write_dataset
from repro.errors import MetadataValidationError
from repro.metadata import parse_descriptor
from repro.metadata.builder import DescriptorBuilder, descriptor_for_array
from tests.conftest import PAPER_DESCRIPTOR, assert_tables_equal


def build_paper_equivalent():
    """The Figure 4 descriptor, built programmatically (scaled fixture)."""
    b = DescriptorBuilder("IparsData", schema_name="IPARS")
    b.attribute("REL", "short int").attribute("TIME", "int")
    b.attributes(X="float", Y="float", Z="float", SOIL="float", SGAS="float")
    b.directories("osu{i}/ipars", count=4)
    b.index_on("REL", "TIME")

    coords = b.leaf("ipars1")
    with coords.loop("GRID", "$DIRID*10+1", "($DIRID+1)*10"):
        coords.record("X", "Y", "Z")
    coords.files("DIR[$DIRID]/COORDS", DIRID=(0, 3))

    data = b.leaf("ipars2")
    with data.loop("TIME", 1, 20):
        with data.loop("GRID", "$DIRID*10+1", "($DIRID+1)*10"):
            data.record("SOIL", "SGAS")
    data.files("DIR[$DIRID]/DATA$REL", REL=(0, 3), DIRID=(0, 3))
    return b


class TestBuilder:
    def test_builds_valid_descriptor(self):
        descriptor = build_paper_equivalent().build()
        assert descriptor.name == "IparsData"
        assert descriptor.index_attrs == ("REL", "TIME")
        assert len(descriptor.leaves()) == 2

    def test_matches_text_parser(self):
        built = CompiledDataset(build_paper_equivalent().build())
        parsed = CompiledDataset(parse_descriptor(PAPER_DESCRIPTOR))
        key = lambda afc: (
            afc.num_rows,
            tuple((c.node, c.path, c.offset, c.bytes_per_row)
                  for c in afc.chunks),
            tuple(sorted(afc.constants)),
        )
        assert sorted(map(key, built.index({}))) == sorted(
            map(key, parsed.index({}))
        )

    def test_to_text_roundtrip(self):
        text = build_paper_equivalent().to_text()
        reparsed = parse_descriptor(text)
        assert reparsed.name == "IparsData"
        assert CompiledDataset(reparsed).groups

    def test_queries_against_fixture_data(self, paper_dataset):
        text, mount = paper_dataset
        built = build_paper_equivalent().build()
        with Virtualizer(text, mount) as original:
            with Virtualizer(built, mount) as from_builder:
                sql = "SELECT TIME, SGAS FROM IparsData WHERE REL = 2 AND TIME <= 4"
                assert_tables_equal(
                    original.query(sql), from_builder.query(sql)
                )

    def test_arrays_helper(self):
        b = DescriptorBuilder("D", schema_name="S")
        b.attributes(T="int", A="float", B="float")
        b.directory(0, "n0", "d")
        b.index_on("T")
        leaf = b.leaf("D")
        with leaf.loop("T", 1, 5):
            leaf.arrays("A", "B", var="G", lo=0, hi=9)
        leaf.files("DIR[0]/f")
        descriptor = b.build()
        (leaf_node,) = descriptor.leaves()
        # Two single-attribute strips per T iteration.
        from repro.core.strips import build_strips

        strips, _ = build_strips(leaf_node, descriptor.schema, {})
        assert [s.attrs for s in strips] == [("A",), ("B",)]

    def test_single_leaf_collapses_to_root(self):
        b = DescriptorBuilder("Solo")
        b.attribute("T", "int").attribute("A", "float")
        b.directory(0, "n", "d")
        leaf = b.leaf("Solo")
        with leaf.loop("T", 1, 3):
            leaf.record("A")
        leaf.files("DIR[0]/f")
        descriptor = b.build()
        assert descriptor.layout.is_leaf
        assert descriptor.layout.name == "Solo"


class TestBuilderErrors:
    def test_unclosed_loop(self):
        b = DescriptorBuilder("D")
        b.attribute("T", "int").attribute("A", "float")
        b.directory(0, "n", "d")
        leaf = b.leaf("D")
        ctx = leaf.loop("T", 1, 3)
        ctx.__enter__()
        leaf.record("A")
        leaf.files("DIR[0]/f")
        with pytest.raises(MetadataValidationError, match="still open"):
            b.build()

    def test_empty_record(self):
        leaf = DescriptorBuilder("D").leaf("D")
        with pytest.raises(MetadataValidationError, match="attribute names"):
            leaf.record()

    def test_leaf_without_files(self):
        b = DescriptorBuilder("D")
        b.attribute("A", "float")
        b.directory(0, "n", "d")
        leaf = b.leaf("D")
        with leaf.loop("G", 0, 2):
            leaf.record("A")
        with pytest.raises(MetadataValidationError, match="no files"):
            b.build()

    def test_validation_applies(self):
        b = DescriptorBuilder("D")
        b.attribute("A", "float")
        b.directory(0, "n", "d")
        leaf = b.leaf("D")
        with leaf.loop("G", 0, 2):
            leaf.record("GHOST")
        leaf.files("DIR[0]/f")
        with pytest.raises(MetadataValidationError, match="GHOST"):
            b.build()


class TestDescriptorForArray:
    def test_roundtrip(self, tmp_path):
        array = np.zeros(
            7, dtype=[("T", "<i4"), ("A", "<f4"), ("B", "<f8")]
        )
        array["T"] = np.arange(7)
        array["A"] = np.arange(7) * 0.5
        array["B"] = np.arange(7) * 2.0
        descriptor = descriptor_for_array("Table", array, index_attrs=("T",))

        mount = local_mount(str(tmp_path))
        import os

        os.makedirs(tmp_path / "node0" / "data")
        array.tofile(str(tmp_path / "node0" / "data" / "table.bin"))
        with Virtualizer(descriptor, mount) as v:
            out = v.query("SELECT T, B FROM Table WHERE A >= 1.0")
        assert out.num_rows == 5
        np.testing.assert_allclose(np.sort(out["B"]), np.arange(2, 7) * 2.0)

    def test_requires_structured(self):
        with pytest.raises(MetadataValidationError, match="structured"):
            descriptor_for_array("T", np.zeros(3))
