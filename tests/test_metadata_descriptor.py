"""Tests for descriptor assembly and semantic validation."""

import pytest

from repro.errors import MetadataValidationError
from repro.metadata import parse_descriptor
from tests.conftest import PAPER_DESCRIPTOR


def minimal(layout_body: str, schema_extra: str = "", dirs: int = 1) -> str:
    """A tiny descriptor wrapper for validation tests."""
    dir_lines = "\n".join(f"DIR[{i}] = n{i}/d" for i in range(dirs))
    return f"""
[S]
T = int
X = float
{schema_extra}

[D]
DatasetDescription = S
{dir_lines}

{layout_body}
"""


class TestAssembly:
    def test_paper_descriptor(self):
        d = parse_descriptor(PAPER_DESCRIPTOR)
        assert d.name == "IparsData"
        assert d.schema.name == "IPARS"
        assert d.index_attrs == ("REL", "TIME")
        assert [l.name for l in d.leaves()] == ["ipars1", "ipars2"]

    def test_extra_attrs_folded_into_schema(self):
        text = minimal(
            'DATASET "D" { DATATYPE { EXTRA = double } '
            "DATASPACE { LOOP T 1:4:1 { X EXTRA } } DATA { DIR[0]/f } }"
        )
        d = parse_descriptor(text)
        assert "EXTRA" in d.schema

    def test_dataset_name_selection(self):
        text = PAPER_DESCRIPTOR + "\n[Other]\nDatasetDescription = IPARS\nDIR[0] = n/d\n"
        text += 'DATASET "Other" { DATASPACE { LOOP TIME 1:2:1 { X Y Z SOIL SGAS } } DATA { DIR[0]/f REL = 0:0:1 } }\n'
        d = parse_descriptor(text, dataset_name="IparsData")
        assert d.name == "IparsData"
        d2 = parse_descriptor(text, dataset_name="Other")
        assert d2.name == "Other"

    def test_ambiguous_dataset_requires_name(self):
        text = PAPER_DESCRIPTOR + "\n[Other]\nDatasetDescription = IPARS\nDIR[0] = n/d\n"
        with pytest.raises(MetadataValidationError, match="dataset_name"):
            parse_descriptor(text)

    def test_unknown_dataset_name(self):
        with pytest.raises(MetadataValidationError, match="no storage section"):
            parse_descriptor(PAPER_DESCRIPTOR, dataset_name="Ghost")

    def test_missing_schema(self):
        text = """
[D]
DatasetDescription = GHOST
DIR[0] = n/d

DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }
"""
        with pytest.raises(MetadataValidationError, match="undefined schema"):
            parse_descriptor(text)

    def test_no_storage(self):
        with pytest.raises(MetadataValidationError, match="no storage"):
            parse_descriptor("[S]\nX = int\n")


class TestValidation:
    def test_unknown_attribute_in_dataspace(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X NOPE } } DATA { DIR[0]/f } }'
        )
        with pytest.raises(MetadataValidationError, match="NOPE"):
            parse_descriptor(text)

    def test_attribute_stored_twice_in_leaf(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } LOOP T2 1:2:1 { X } } '
            "DATA { DIR[0]/f } }"
        )
        with pytest.raises(MetadataValidationError, match="twice"):
            parse_descriptor(text)

    def test_attribute_stored_by_two_leaves(self):
        text = minimal(
            """
DATASET "D" {
  DATA { DATASET a DATASET b }
  DATASET "a" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/fa } }
  DATASET "b" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/fb } }
}
"""
        )
        with pytest.raises(MetadataValidationError, match="one leaf"):
            parse_descriptor(text)

    def test_uncovered_attribute(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }',
            schema_extra="MISSING = float",
        )
        with pytest.raises(MetadataValidationError, match="MISSING"):
            parse_descriptor(text)

    def test_implicit_attribute_must_be_integer(self):
        text = """
[S]
T = float
X = float

[D]
DatasetDescription = S
DIR[0] = n/d

DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }
"""
        with pytest.raises(MetadataValidationError, match="integer type"):
            parse_descriptor(text)

    def test_loop_shadowing(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { LOOP T 1:2:1 { X } } } '
            "DATA { DIR[0]/f } }"
        )
        with pytest.raises(MetadataValidationError, match="shadows"):
            parse_descriptor(text)

    def test_loop_bound_uses_unbound_variable(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:$K:1 { X } } DATA { DIR[0]/f } }'
        )
        with pytest.raises(MetadataValidationError, match="binding variables"):
            parse_descriptor(text)

    def test_loop_bound_uses_outer_loop_var(self):
        # Triangular loops would make chunk sizes non-constant per file.
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:5:1 { LOOP U 1:$T:1 { X } } } '
            "DATA { DIR[0]/f } }"
        )
        with pytest.raises(MetadataValidationError, match="binding variables"):
            parse_descriptor(text)

    def test_loop_var_collides_with_binding(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { LOOP A 1:2:1 { X } } } '
            "DATA { DIR[0]/f$A A = 0:1:1 } }"
        )
        with pytest.raises(MetadataValidationError, match="collides"):
            parse_descriptor(text)

    def test_pattern_unbound_variable(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[$Q]/f } }'
        )
        with pytest.raises(MetadataValidationError, match="unbound"):
            parse_descriptor(text)

    def test_dir_index_out_of_range(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[7]/f } }'
        )
        with pytest.raises(MetadataValidationError, match="DIR\\[7\\]"):
            parse_descriptor(text)

    def test_duplicate_binding(self):
        text = minimal(
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } '
            "DATA { DIR[0]/f$A A = 0:1:1 A = 0:1:1 } }"
        )
        with pytest.raises(MetadataValidationError, match="binds variable"):
            parse_descriptor(text)

    def test_index_attr_not_in_schema(self):
        text = minimal(
            'DATASET "D" { DATAINDEX { GHOST } '
            "DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }"
        )
        with pytest.raises(MetadataValidationError, match="GHOST"):
            parse_descriptor(text)

    def test_leaf_without_files(self):
        text = minimal('DATASET "D" { DATASPACE { LOOP T 1:2:1 { X } } }')
        with pytest.raises(MetadataValidationError, match="no files|neither"):
            parse_descriptor(text)

    def test_empty_dataset(self):
        text = minimal('DATASET "D" { }')
        with pytest.raises(MetadataValidationError, match="no leaf DATASET"):
            parse_descriptor(text)
