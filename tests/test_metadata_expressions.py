"""Unit + property tests for descriptor arithmetic expressions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MetadataSyntaxError, MetadataValidationError
from repro.metadata.expressions import (
    BinOp,
    Literal,
    RangeExpr,
    Var,
    parse_expr,
    parse_range,
)


class TestParseExpr:
    def test_literal(self):
        assert parse_expr("42").evaluate({}) == 42

    def test_variable_with_dollar(self):
        assert parse_expr("$DIRID").evaluate({"DIRID": 3}) == 3

    def test_bare_variable(self):
        # The paper's Figure 4 writes DIR[DIRID] without the '$'.
        assert parse_expr("DIRID").evaluate({"DIRID": 5}) == 5

    def test_precedence(self):
        assert parse_expr("2+3*4").evaluate({}) == 14
        assert parse_expr("(2+3)*4").evaluate({}) == 20

    def test_paper_lower_bound(self):
        expr = parse_expr("$DIRID*100+1")
        assert expr.evaluate({"DIRID": 0}) == 1
        assert expr.evaluate({"DIRID": 3}) == 301

    def test_paper_upper_bound(self):
        expr = parse_expr("($DIRID+1)*100")
        assert expr.evaluate({"DIRID": 0}) == 100
        assert expr.evaluate({"DIRID": 3}) == 400

    def test_unary_minus(self):
        assert parse_expr("-5").evaluate({}) == -5
        assert parse_expr("-$A + 10").evaluate({"A": 3}) == 7

    def test_floor_division(self):
        assert parse_expr("7/2").evaluate({}) == 3

    def test_modulo(self):
        assert parse_expr("7%3").evaluate({}) == 1

    def test_free_vars(self):
        expr = parse_expr("($A+1)*($B-2)+3")
        assert expr.free_vars() == frozenset({"A", "B"})

    def test_unbound_variable_raises(self):
        with pytest.raises(MetadataValidationError, match="unbound"):
            parse_expr("$MISSING").evaluate({})

    def test_division_by_zero(self):
        with pytest.raises(MetadataValidationError, match="division by zero"):
            parse_expr("1/($A-$A)").evaluate({"A": 1})

    def test_division_by_zero_is_typed_with_bare_message(self):
        from repro.errors import MetadataEvaluationError

        with pytest.raises(MetadataEvaluationError) as info:
            parse_expr("4/0").evaluate({})
        assert "division by zero" in info.value.bare_message
        assert info.value.span is None

    def test_range_eval_error_carries_parse_span(self):
        # Regression: a LOOP bound that divides by zero during
        # evaluation must surface the range's source position, not a
        # bare arithmetic error (see docs/diagnostics.md, RV121).
        from repro.errors import MetadataEvaluationError
        from repro.metadata.spans import Span

        rng = parse_range("1:(4/$A):1", span=Span(7, 23))
        with pytest.raises(MetadataEvaluationError) as info:
            list(rng.evaluate({"A": 0}))
        assert info.value.span == Span(7, 23)
        assert "division by zero" in info.value.bare_message
        assert str(info.value).startswith("line 7, col 23:")

    @pytest.mark.parametrize("bad", ["", "1+", "(1", "1)", "$", "1 2", "a..b"])
    def test_syntax_errors(self, bad):
        with pytest.raises(MetadataSyntaxError):
            parse_expr(bad)

    def test_to_python_matches_eval(self):
        expr = parse_expr("($DIRID*100+1) % 7")
        env = {"DIRID": 5}
        assert eval(expr.to_python()) == expr.evaluate(env)


class TestParseRange:
    def test_simple(self):
        r = parse_range("0:3:1")
        assert list(r.evaluate({})) == [0, 1, 2, 3]

    def test_default_stride(self):
        r = parse_range("1:5")
        assert list(r.evaluate({})) == [1, 2, 3, 4, 5]

    def test_stride(self):
        r = parse_range("0:10:5")
        assert list(r.evaluate({})) == [0, 5, 10]

    def test_paper_range_with_parens(self):
        r = parse_range("($DIRID*100+1):(($DIRID+1)*100):1")
        values = r.evaluate({"DIRID": 1})
        assert values[0] == 101
        assert values[-1] == 200
        assert r.count({"DIRID": 1}) == 100

    def test_count(self):
        assert parse_range("1:500:1").count({}) == 500

    def test_free_vars(self):
        r = parse_range("$A:$B:1")
        assert r.free_vars() == frozenset({"A", "B"})

    def test_zero_stride_rejected(self):
        with pytest.raises(MetadataValidationError, match="stride"):
            parse_range("1:5:0").evaluate({})

    def test_negative_stride_rejected(self):
        with pytest.raises(MetadataValidationError, match="stride"):
            parse_range("5:1:-1").evaluate({})

    def test_empty_range_rejected(self):
        with pytest.raises(MetadataValidationError, match="empty range"):
            parse_range("5:1:1").evaluate({})

    def test_too_many_parts(self):
        with pytest.raises(MetadataSyntaxError):
            parse_range("1:2:3:4")


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

_names = st.sampled_from(["A", "B", "DIRID", "REL"])


@st.composite
def exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return Literal(draw(st.integers(min_value=0, max_value=1000)))
        return Var(draw(_names))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return BinOp(op, draw(exprs(depth + 1)), draw(exprs(depth + 1)))


@given(exprs(), st.dictionaries(_names, st.integers(-50, 50)))
@settings(max_examples=200, deadline=None)
def test_str_reparse_evaluates_identically(expr, env):
    """str(expr) parses back to an expression with identical semantics."""
    full_env = {name: env.get(name, 1) for name in ["A", "B", "DIRID", "REL"]}
    reparsed = parse_expr(str(expr))
    assert reparsed.evaluate(full_env) == expr.evaluate(full_env)


@given(exprs(), st.dictionaries(_names, st.integers(-50, 50)))
@settings(max_examples=200, deadline=None)
def test_to_python_evaluates_identically(expr, env):
    """The code generator's rendering computes the same value."""
    full_env = {name: env.get(name, 1) for name in ["A", "B", "DIRID", "REL"]}
    rendered = expr.to_python()
    assert eval(rendered, {"env": full_env}) == expr.evaluate(full_env)


@given(
    st.integers(0, 100),
    st.integers(0, 100),
    st.integers(1, 7),
)
@settings(max_examples=100, deadline=None)
def test_range_count_matches_enumeration(lo, extra, stride):
    hi = lo + extra
    r = parse_range(f"{lo}:{hi}:{stride}")
    assert r.count({}) == len(list(r.evaluate({})))
