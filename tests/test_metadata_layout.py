"""Unit tests for Component III (dataset layout) parsing."""

import pytest

from repro.errors import MetadataSyntaxError, MetadataValidationError
from repro.metadata.layout import (
    AttrGroup,
    LoopNode,
    iter_attr_names,
    iter_loop_vars,
    parse_file_pattern,
    parse_layout,
    root_datasets,
)

PAPER_LAYOUT = """
DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET ipars1 DATASET ipars2 }

  DATASET "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 {
        X Y Z
      }
    }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }
  }

  DATASET "ipars2" {
    DATASPACE {
      LOOP TIME 1:500:1 {
        LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 {
          SOIL SGAS
        }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }
  }
}
"""


class TestPaperLayout:
    @pytest.fixture
    def root(self):
        datasets = parse_layout(PAPER_LAYOUT)
        return datasets["IparsData"]

    def test_tree_shape(self, root):
        assert not root.is_leaf
        assert [c.name for c in root.children] == ["ipars1", "ipars2"]
        assert [l.name for l in root.leaves()] == ["ipars1", "ipars2"]

    def test_schema_inheritance(self, root):
        assert root.schema_name == "IPARS"
        for child in root.children:
            assert child.effective_schema_name() == "IPARS"

    def test_index_inheritance(self, root):
        for child in root.children:
            assert child.effective_index_attrs() == ("REL", "TIME")

    def test_ipars1_dataspace(self, root):
        leaf = root.children[0]
        (loop,) = leaf.dataspace
        assert isinstance(loop, LoopNode)
        assert loop.var == "GRID"
        (group,) = loop.body
        assert isinstance(group, AttrGroup)
        assert group.names == ("X", "Y", "Z")

    def test_ipars2_nested_loops(self, root):
        leaf = root.children[1]
        (time_loop,) = leaf.dataspace
        assert time_loop.var == "TIME"
        (grid_loop,) = time_loop.body
        assert grid_loop.var == "GRID"
        (group,) = grid_loop.body
        assert group.names == ("SOIL", "SGAS")

    def test_ipars2_bindings(self, root):
        leaf = root.children[1]
        assert [b.var for b in leaf.data.bindings] == ["REL", "DIRID"]
        envs = list(leaf.data.binding_env_iter())
        assert len(envs) == 16
        assert envs[0] == {"REL": 0, "DIRID": 0}
        assert envs[-1] == {"REL": 3, "DIRID": 3}

    def test_file_expansion(self, root):
        leaf = root.children[1]
        pattern = leaf.data.patterns[0]
        assert pattern.expand({"REL": 2, "DIRID": 1}) == (1, "DATA2")

    def test_iter_helpers(self, root):
        leaf = root.children[1]
        assert list(iter_attr_names(leaf.dataspace)) == ["SOIL", "SGAS"]
        assert list(iter_loop_vars(leaf.dataspace)) == ["TIME", "GRID"]


class TestSiblingDefinitionStyle:
    def test_children_defined_as_top_level_blocks(self):
        # Figure 4 defines the children inline; the paper also allows the
        # sibling style where DATA references later top-level blocks.
        text = """
DATASET "root" {
  DATA { DATASET a DATASET b }
}
DATASET "a" {
  DATASPACE { LOOP T 1:2:1 { X } }
  DATA { DIR[0]/fa }
}
DATASET "b" {
  DATASPACE { LOOP T 1:2:1 { Y } }
  DATA { DIR[0]/fb }
}
"""
        datasets = parse_layout(text)
        roots = root_datasets(datasets)
        assert [r.name for r in roots] == ["root"]
        assert [c.name for c in roots[0].children] == ["a", "b"]

    def test_unresolved_reference(self):
        with pytest.raises(MetadataValidationError, match="undefined"):
            parse_layout('DATASET "r" { DATA { DATASET ghost } }')


class TestDatatypeClause:
    def test_inline_attribute_definitions(self):
        text = """
DATASET "d" {
  DATATYPE { EXTRA = double FLAG = char }
  DATASPACE { LOOP T 1:2:1 { EXTRA FLAG } }
  DATA { DIR[0]/f }
}
"""
        node = parse_layout(text)["d"]
        assert [a.name for a in node.extra_attrs] == ["EXTRA", "FLAG"]
        assert node.extra_attrs[0].type.name == "double"

    def test_schema_reference(self):
        node = parse_layout(
            'DATASET "d" { DATATYPE { S } DATASPACE { LOOP T 1:2:1 { X } } '
            "DATA { DIR[0]/f } }"
        )["d"]
        assert node.schema_name == "S"


class TestErrors:
    def test_empty_loop_body(self):
        with pytest.raises(MetadataValidationError, match="empty body"):
            parse_layout(
                'DATASET "d" { DATASPACE { LOOP T 1:2:1 { } } DATA { DIR[0]/f } }'
            )

    def test_dataspace_and_children_conflict(self):
        text = """
DATASET "d" {
  DATASPACE { LOOP T 1:2:1 { X } }
  DATASET "c" { DATASPACE { LOOP T 1:2:1 { Y } } DATA { DIR[0]/g } }
}
"""
        with pytest.raises(MetadataValidationError, match="both"):
            parse_layout(text)

    def test_mixing_refs_and_files(self):
        with pytest.raises(MetadataValidationError, match="cannot mix"):
            parse_layout('DATASET "d" { DATA { DATASET a DIR[0]/f } }')

    def test_variable_binding_bounds(self):
        with pytest.raises(MetadataValidationError, match="constant"):
            parse_layout(
                'DATASET "d" { DATASPACE { LOOP T 1:2:1 { X } } '
                "DATA { DIR[0]/f$A A = 0:$B:1 } }"
            )

    def test_unknown_keyword(self):
        with pytest.raises(MetadataSyntaxError, match="unexpected"):
            parse_layout('DATASET "d" { DATASPACES { } }')

    def test_duplicate_dataset_name(self):
        text = (
            'DATASET "d" { DATASPACE { LOOP T 1:2:1 { X } } DATA { DIR[0]/f } }\n'
        ) * 2
        with pytest.raises(MetadataValidationError, match="twice"):
            parse_layout(text)

    def test_unterminated_block(self):
        with pytest.raises(MetadataSyntaxError):
            parse_layout('DATASET "d" { DATASPACE { LOOP T 1:2:1 { X }')


class TestFilePattern:
    def test_constant_dir(self):
        pattern = parse_file_pattern("DIR[0]/data.bin")
        assert pattern.expand({}) == (0, "data.bin")

    def test_dir_expression(self):
        pattern = parse_file_pattern("DIR[$N%4]/f")
        assert pattern.expand({"N": 6}) == (2, "f")

    def test_multiple_substitutions(self):
        pattern = parse_file_pattern("DIR[$D]/rel$R-time$T.bin")
        assert pattern.expand({"D": 1, "R": 2, "T": 30}) == (1, "rel2-time30.bin")

    def test_subdirectory_template(self):
        pattern = parse_file_pattern("DIR[0]/rel$R/chunk$C")
        assert pattern.expand({"R": 1, "C": 5}) == (0, "rel1/chunk5")

    def test_free_vars(self):
        pattern = parse_file_pattern("DIR[$D]/x$A-y$B")
        assert pattern.free_vars() == frozenset({"D", "A", "B"})

    def test_unbound_template_var(self):
        pattern = parse_file_pattern("DIR[0]/f$MISSING")
        with pytest.raises(MetadataValidationError, match="unbound"):
            pattern.expand({})

    @pytest.mark.parametrize("bad", ["data.bin", "DIR[0]x", "DIR[0]/", "DIR[/f"])
    def test_malformed(self, bad):
        with pytest.raises(MetadataSyntaxError):
            parse_file_pattern(bad)


class TestCommentHandling:
    def test_line_and_block_comments(self):
        text = """
// leading comment
DATASET "d" { // {* trailing *}
  {* block
     comment *}
  DATASPACE { LOOP T 1:2:1 { X } }
  DATA { DIR[0]/f }
}
"""
        node = parse_layout(text)["d"]
        assert node.is_leaf
