"""Unit tests for Component I (dataset schema) parsing and the Schema model."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.metadata.schema import Attribute, Schema, parse_schemas
from repro.metadata.types import parse_type

IPARS_TEXT = """
[IPARS]              // {* Dataset schema name *}
REL = short int      // {* Data type definition *}
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float
"""


class TestParseSchemas:
    def test_paper_example(self):
        schemas = parse_schemas(IPARS_TEXT)
        assert set(schemas) == {"IPARS"}
        schema = schemas["IPARS"]
        assert schema.names == ("REL", "TIME", "X", "Y", "Z", "SOIL", "SGAS")
        assert schema.attribute("REL").type.name == "short int"
        assert schema.attribute("TIME").type.name == "int"

    def test_multiple_schemas(self):
        text = "[A]\nP = int\n\n[B]\nQ = float\n"
        schemas = parse_schemas(text)
        assert set(schemas) == {"A", "B"}

    def test_storage_sections_skipped(self):
        text = IPARS_TEXT + "\n[IparsData]\nDatasetDescription = IPARS\nDIR[0] = n0/d\n"
        schemas = parse_schemas(text)
        assert set(schemas) == {"IPARS"}

    def test_layout_blocks_skipped(self):
        text = IPARS_TEXT + '\nDATASET "x" {\n DATASPACE { LOOP T 1:2:1 { X } }\n DATA { DIR[0]/f }\n}\n'
        schemas = parse_schemas(text)
        assert set(schemas) == {"IPARS"}

    def test_duplicate_schema_rejected(self):
        with pytest.raises(SchemaError, match="declared twice"):
            parse_schemas("[A]\nX = int\n[A]\nY = int\n")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError, match="duplicate attribute"):
            parse_schemas("[A]\nX = int\nX = float\n")

    def test_entry_outside_section(self):
        with pytest.raises(SchemaError, match="outside any section"):
            parse_schemas("X = int\n")

    def test_missing_equals(self):
        with pytest.raises(SchemaError, match="name = value"):
            parse_schemas("[A]\nX int\n")

    def test_unknown_type(self):
        with pytest.raises(SchemaError, match="unknown attribute type"):
            parse_schemas("[A]\nX = quaternion\n")

    def test_empty_section_name(self):
        with pytest.raises(SchemaError, match="empty section name"):
            parse_schemas("[]\nX = int\n")


class TestSchemaModel:
    @pytest.fixture
    def schema(self):
        return parse_schemas(IPARS_TEXT)["IPARS"]

    def test_contains(self, schema):
        assert "SOIL" in schema
        assert "WATER" not in schema

    def test_len_and_iter(self, schema):
        assert len(schema) == 7
        assert [a.name for a in schema] == list(schema.names)

    def test_index_of(self, schema):
        assert schema.index_of("X") == 2
        with pytest.raises(SchemaError):
            schema.index_of("NOPE")

    def test_row_size(self, schema):
        assert schema.row_size == 2 + 4 + 5 * 4

    def test_numpy_dtype(self, schema):
        dtype = schema.numpy_dtype()
        assert dtype.names == schema.names
        assert dtype["REL"] == np.dtype("<i2")

    def test_numpy_dtype_projection(self, schema):
        dtype = schema.numpy_dtype(["SOIL", "TIME"])
        assert dtype.names == ("SOIL", "TIME")

    def test_project(self, schema):
        projected = schema.project(["Z", "X"])
        assert projected.names == ("Z", "X")

    def test_extend(self, schema):
        extended = schema.extend([Attribute("EXTRA", parse_type("double"))])
        assert "EXTRA" in extended
        assert len(schema) == 7  # original untouched

    def test_extend_duplicate_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.extend([Attribute("SOIL", parse_type("int"))])

    def test_to_text_roundtrip(self, schema):
        text = schema.to_text()
        reparsed = parse_schemas(text)["IPARS"]
        assert reparsed.names == schema.names
        assert [a.type.name for a in reparsed] == [a.type.name for a in schema]
