"""Unit tests for Component II (dataset storage) parsing."""

import pytest

from repro.errors import MetadataValidationError
from repro.metadata.storage import DirEntry, StorageDescriptor, parse_storage

TEXT = """
[IparsData]
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars
"""


class TestParseStorage:
    def test_paper_example(self):
        storages = parse_storage(TEXT)
        assert set(storages) == {"IparsData"}
        storage = storages["IparsData"]
        assert storage.schema_name == "IPARS"
        assert len(storage) == 4
        assert storage.dir(2).node == "osu2"
        assert storage.dir(2).path == "ipars"

    def test_schema_sections_skipped(self):
        text = "[IPARS]\nX = float\n" + TEXT
        assert set(parse_storage(text)) == {"IparsData"}

    def test_nested_path(self):
        storages = parse_storage(
            "[D]\nDatasetDescription = S\nDIR[0] = node7/data/deep/dir\n"
        )
        entry = storages["D"].dir(0)
        assert entry.node == "node7"
        assert entry.path == "data/deep/dir"

    def test_node_only(self):
        storages = parse_storage("[D]\nDatasetDescription = S\nDIR[0] = n0\n")
        entry = storages["D"].dir(0)
        assert entry.node == "n0"
        assert entry.path == ""
        assert entry.spec == "n0"

    def test_sparse_and_unordered_indices(self):
        storages = parse_storage(
            "[D]\nDatasetDescription = S\nDIR[5] = b/x\nDIR[2] = a/x\n"
        )
        assert [e.index for e in storages["D"].dirs] == [2, 5]

    def test_missing_description(self):
        with pytest.raises(MetadataValidationError, match="DatasetDescription"):
            parse_storage("[D]\nDIR[0] = n/p\n")

    def test_duplicate_description(self):
        with pytest.raises(MetadataValidationError, match="twice"):
            parse_storage(
                "[D]\nDatasetDescription = A\nDatasetDescription = B\nDIR[0] = n/p\n"
            )

    def test_no_dirs(self):
        with pytest.raises(MetadataValidationError, match="no DIR"):
            parse_storage("[D]\nDatasetDescription = S\n")

    def test_duplicate_dir_index(self):
        with pytest.raises(MetadataValidationError, match="declared twice"):
            parse_storage(
                "[D]\nDatasetDescription = S\nDIR[0] = a/x\nDIR[0] = b/y\n"
            )

    def test_unknown_key(self):
        with pytest.raises(MetadataValidationError, match="unknown storage key"):
            parse_storage("[D]\nDatasetDescription = S\nDIRS[0] = a/x\n")

    def test_empty_dir_value(self):
        with pytest.raises(MetadataValidationError, match="empty"):
            parse_storage("[D]\nDatasetDescription = S\nDIR[0] =\n")


class TestStorageModel:
    @pytest.fixture
    def storage(self):
        return parse_storage(TEXT)["IparsData"]

    def test_nodes(self, storage):
        assert storage.nodes == ("osu0", "osu1", "osu2", "osu3")

    def test_dirs_on_node(self, storage):
        assert [e.index for e in storage.dirs_on_node("osu1")] == [1]
        assert storage.dirs_on_node("missing") == []

    def test_unknown_dir_index(self, storage):
        with pytest.raises(MetadataValidationError, match="no DIR"):
            storage.dir(9)

    def test_multiple_dirs_per_node(self):
        storage = StorageDescriptor(
            "D", "S",
            [DirEntry(0, "n0", "disk1"), DirEntry(1, "n0", "disk2")],
        )
        assert storage.nodes == ("n0",)
        assert len(storage.dirs_on_node("n0")) == 2

    def test_to_text_roundtrip(self, storage):
        reparsed = parse_storage(storage.to_text())["IparsData"]
        assert [e.spec for e in reparsed.dirs] == [e.spec for e in storage.dirs]
