"""Unit tests for the descriptor character scanner."""

import pytest

from repro.errors import MetadataSyntaxError
from repro.metadata.tokens import Scanner


class TestTrivia:
    def test_whitespace_and_line_comments(self):
        s = Scanner("  // comment\n  NAME")
        assert s.read_ident() == "NAME"

    def test_block_comments(self):
        s = Scanner("{* multi\nline *} NAME")
        assert s.read_ident() == "NAME"

    def test_unterminated_block_comment(self):
        s = Scanner("{* oops")
        with pytest.raises(MetadataSyntaxError, match="unterminated"):
            s.skip_trivia()

    def test_at_end(self):
        assert Scanner("   // only a comment").at_end()
        assert not Scanner(" X ").at_end()


class TestReaders:
    def test_read_ident(self):
        s = Scanner("Alpha_2 rest")
        assert s.read_ident() == "Alpha_2"
        assert s.read_ident() == "rest"

    def test_read_ident_failure_names_expectation(self):
        with pytest.raises(MetadataSyntaxError, match="loop variable"):
            Scanner("{").read_ident("loop variable")

    def test_peek_ident_does_not_consume(self):
        s = Scanner("HELLO world")
        assert s.peek_ident() == "HELLO"
        assert s.read_ident() == "HELLO"

    def test_read_name_quoted_and_bare(self):
        assert Scanner('"my dataset"').read_name() == "my dataset"
        assert Scanner("plain").read_name() == "plain"

    def test_unterminated_string(self):
        with pytest.raises(MetadataSyntaxError, match="unterminated"):
            Scanner('"oops').read_quoted()

    def test_expect_and_try_consume(self):
        s = Scanner("{ }")
        s.expect("{")
        assert not s.try_consume("{")
        assert s.try_consume("}")

    def test_expect_reports_position(self):
        s = Scanner("line1\nline2 X")
        s.read_ident()
        s.read_ident()
        try:
            s.expect("{")
        except MetadataSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            raise AssertionError

    def test_read_balanced_until(self):
        s = Scanner("($A+1):(($A)*2) {")
        assert s.read_balanced_until(":") == "($A+1)"
        s.expect(":")
        assert s.read_balanced_until("{") == "(($A)*2)"

    def test_read_balanced_unbalanced(self):
        with pytest.raises(MetadataSyntaxError, match="unbalanced"):
            Scanner("a)b {").read_balanced_until("{")

    def test_read_balanced_eof(self):
        with pytest.raises(MetadataSyntaxError, match="end of input"):
            Scanner("abc").read_balanced_until("{")

    def test_read_until_whitespace_stops_at_braces(self):
        s = Scanner("DIR[0]/file}rest")
        assert s.read_until_whitespace() == "DIR[0]/file"

    def test_read_rest_of_line_strips_comment(self):
        s = Scanner("value // trailing\nnext")
        assert s.read_rest_of_line() == "value"

    def test_location_tracking(self):
        s = Scanner("ab\ncd")
        s.pos = 4  # the 'd'
        assert s.location() == (2, 2)

    def test_location_matches_naive_scan_at_every_position(self):
        # The cached line-offset table must agree with a character-level
        # rescan at every position, including line starts, newlines, and
        # one past the end.
        text = "a\nbb\n\nccc\nd"
        s = Scanner(text)
        for pos in range(len(text) + 1):
            line = text.count("\n", 0, pos) + 1
            last_nl = text.rfind("\n", 0, pos)
            column = pos - (last_nl + 1) + 1
            assert s.location(pos) == (line, column), pos

    def test_location_cache_reused_across_calls(self):
        s = Scanner("x\n" * 50)
        assert s._line_starts is None
        assert s.location(0) == (1, 1)
        table = s._line_starts
        assert table is not None and len(table) == 51
        assert s.location(99) == (50, 2)
        assert s._line_starts is table  # built once, reused

    def test_span_covers_start_and_end(self):
        s = Scanner("ab\ncd\nef")
        sp = s.span(1, 7)
        assert (sp.line, sp.column) == (1, 2)
        assert (sp.end_line, sp.end_column) == (3, 2)
