"""Unit tests for the scalar type system."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.metadata.types import (
    BIG_ENDIAN,
    LITTLE_ENDIAN,
    ScalarType,
    canonical_type_names,
    parse_type,
    type_from_dtype,
)


class TestParseType:
    @pytest.mark.parametrize(
        "text,size,kind",
        [
            ("char", 1, "i"),
            ("short int", 2, "i"),
            ("short", 2, "i"),
            ("int", 4, "i"),
            ("unsigned int", 4, "u"),
            ("long int", 8, "i"),
            ("long long", 8, "i"),
            ("float", 4, "f"),
            ("double", 8, "f"),
        ],
    )
    def test_canonical_names(self, text, size, kind):
        t = parse_type(text)
        assert t.size == size
        assert t.kind == kind

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("int16", "short int"),
            ("int32", "int"),
            ("float32", "float"),
            ("float64", "double"),
            ("real", "float"),
            ("uint8", "unsigned char"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert parse_type(alias).name == canonical

    def test_case_and_whitespace_insensitive(self):
        assert parse_type("  SHORT   INT ").name == "short int"
        assert parse_type("Float").name == "float"

    def test_unknown_type_raises(self):
        with pytest.raises(SchemaError, match="unknown attribute type"):
            parse_type("decimal")

    def test_empty_raises(self):
        with pytest.raises(SchemaError):
            parse_type("")


class TestDtypes:
    def test_little_endian_dtype(self):
        assert parse_type("int").dtype == np.dtype("<i4")
        assert parse_type("double").dtype == np.dtype("<f8")

    def test_big_endian_dtype(self):
        t = parse_type("float", byteorder=BIG_ENDIAN)
        assert t.dtype == np.dtype(">f4")

    def test_single_byte_ignores_order(self):
        t = parse_type("char", byteorder=BIG_ENDIAN)
        assert t.dtype.itemsize == 1

    def test_with_byteorder(self):
        t = parse_type("int").with_byteorder(BIG_ENDIAN)
        assert t.byteorder == BIG_ENDIAN
        assert t.dtype.byteorder == ">"

    def test_with_bad_byteorder(self):
        with pytest.raises(SchemaError):
            parse_type("int").with_byteorder("!")


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["char", "short int", "int", "long int",
                                      "float", "double", "unsigned int"])
    def test_type_from_dtype_roundtrip(self, name):
        t = parse_type(name)
        assert type_from_dtype(t.dtype).name == name

    def test_type_from_unknown_dtype(self):
        with pytest.raises(SchemaError):
            type_from_dtype(np.dtype("complex128"))


class TestPredicates:
    def test_is_numeric(self):
        assert parse_type("int").is_numeric
        assert parse_type("float").is_numeric

    def test_is_integer(self):
        assert parse_type("short int").is_integer
        assert not parse_type("float").is_integer

    def test_is_float(self):
        assert parse_type("double").is_float
        assert not parse_type("int").is_float

    def test_names_sorted_longest_first(self):
        names = canonical_type_names()
        lengths = [len(n) for n in names]
        assert lengths == sorted(lengths, reverse=True)
