"""Tests for the XML embedding of the description language."""

import pytest

from repro.core import CompiledDataset, Virtualizer
from repro.errors import MetadataSyntaxError, MetadataValidationError
from repro.metadata import parse_descriptor
from repro.metadata.xml_io import descriptor_to_xml, xml_to_descriptor
from tests.conftest import PAPER_DESCRIPTOR, assert_tables_equal


@pytest.fixture(scope="module")
def paper():
    return parse_descriptor(PAPER_DESCRIPTOR)


class TestRoundTrip:
    def test_roundtrip_structure(self, paper):
        xml = descriptor_to_xml(paper)
        back = xml_to_descriptor(xml)
        assert back.name == paper.name
        assert back.schema.names == paper.schema.names
        assert [a.type.name for a in back.schema] == [
            a.type.name for a in paper.schema
        ]
        assert back.index_attrs == paper.index_attrs
        assert [l.name for l in back.leaves()] == [l.name for l in paper.leaves()]
        assert [e.spec for e in back.storage.dirs] == [
            e.spec for e in paper.storage.dirs
        ]

    def test_roundtrip_produces_identical_plans(self, paper):
        xml = descriptor_to_xml(paper)
        back = xml_to_descriptor(xml)
        a = CompiledDataset(paper)
        b = CompiledDataset(back)
        key = lambda afc: (
            afc.num_rows,
            tuple((c.node, c.path, c.offset, c.bytes_per_row) for c in afc.chunks),
            tuple(sorted(afc.constants)),
        )
        assert sorted(map(key, a.index({}))) == sorted(map(key, b.index({})))

    def test_roundtrip_queries_on_disk(self, paper_dataset):
        text, mount = paper_dataset
        xml = descriptor_to_xml(parse_descriptor(text))
        with Virtualizer(text, mount) as original:
            with Virtualizer(xml_to_descriptor(xml), mount) as from_xml:
                sql = "SELECT REL, SOIL FROM IparsData WHERE TIME <= 3"
                assert_tables_equal(original.query(sql), from_xml.query(sql))

    def test_double_roundtrip_is_stable(self, paper):
        once = descriptor_to_xml(paper)
        twice = descriptor_to_xml(xml_to_descriptor(once))
        assert once == twice

    def test_extra_attrs_roundtrip(self):
        text = """
[S]
T = int
X = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATATYPE { EXTRA = double }
  DATASPACE { LOOP T 1:4:1 { X EXTRA } }
  DATA { DIR[0]/f }
}
"""
        descriptor = parse_descriptor(text)
        back = xml_to_descriptor(descriptor_to_xml(descriptor))
        assert "EXTRA" in back.schema
        assert back.schema.attribute("EXTRA").type.name == "double"


class TestXmlContent:
    def test_expressions_preserved(self, paper):
        xml = descriptor_to_xml(paper)
        assert "DIRID" in xml
        assert "<loop" in xml and "<attributes>" in xml
        assert 'pattern="DIR[$DIRID]/DATA$REL"' in xml

    def test_is_wellformed_xml(self, paper):
        import xml.etree.ElementTree as ET

        root = ET.fromstring(descriptor_to_xml(paper))
        assert root.tag == "descriptor"
        assert root.find("schema") is not None
        assert root.find("storage") is not None


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(MetadataSyntaxError, match="malformed"):
            xml_to_descriptor("<descriptor><schema</descriptor>")

    def test_wrong_root(self):
        with pytest.raises(MetadataSyntaxError, match="root element"):
            xml_to_descriptor("<layout/>")

    def test_missing_required_attribute(self):
        with pytest.raises(MetadataSyntaxError, match="missing required"):
            xml_to_descriptor(
                "<descriptor><schema><attribute name='X'/></schema>"
                "</descriptor>"
            )

    def test_storage_without_dirs(self):
        with pytest.raises(MetadataValidationError, match="no <dir>"):
            xml_to_descriptor(
                "<descriptor>"
                "<schema name='S'><attribute name='X' type='float'/></schema>"
                "<storage dataset='D' schema='S'/>"
                "</descriptor>"
            )

    def test_validation_still_applies(self):
        # Structure parses, but the leaf stores an unknown attribute.
        xml = """
<descriptor>
  <schema name="S"><attribute name="X" type="float"/></schema>
  <storage dataset="D" schema="S"><dir index="0" node="n" path="d"/></storage>
  <dataset name="D">
    <dataspace><loop var="T" lo="1" hi="2" step="1">
      <attributes>GHOST</attributes>
    </loop></dataspace>
    <data><file pattern="DIR[0]/f"/></data>
  </dataset>
</descriptor>
"""
        with pytest.raises(MetadataValidationError, match="GHOST"):
            xml_to_descriptor(xml)
