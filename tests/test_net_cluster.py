"""End-to-end cluster tests: real OS processes over real sockets.

These spawn ``repro serve`` subprocesses via :class:`ProcessCluster` and
drive them through ``repro.connect("tcp://...")`` — the full out-of-process
STORM path, asserted bit-identical against the in-process reference.
"""

import numpy as np
import pytest

import repro
from repro.core import ExecOptions, local_mount
from repro.datasets import IparsConfig, ipars
from repro.errors import NodeFailureError, StormError
from repro.net import ProcessCluster
from tests.conftest import assert_tables_equal

CLUSTER_IPARS = IparsConfig(
    num_rels=2, num_times=8, cells_per_node=24, num_nodes=3
)

SQL = "SELECT REL, TIME, X, Y, SOIL FROM IparsData WHERE TIME > 1 AND TIME <= 6"


@pytest.fixture(scope="module")
def cluster_dataset(tmp_path_factory):
    """(descriptor text, root) for a 3-node on-disk IPARS dataset."""
    root = tmp_path_factory.mktemp("net_cluster")
    text, _ = ipars.generate(CLUSTER_IPARS, "L0", local_mount(str(root)))
    return text, str(root)


@pytest.fixture(scope="module")
def local_reference(cluster_dataset):
    """The in-process answer every remote run must match bit-for-bit."""
    text, root = cluster_dataset
    with repro.connect(f"local://{root}", descriptor=text) as db:
        return db.query(SQL)


@pytest.fixture(scope="module")
def procs(cluster_dataset):
    """One 3-process cluster shared by the clean-path tests."""
    text, root = cluster_dataset
    with ProcessCluster(text, root) as cluster:
        yield cluster


class TestProcessCluster:
    def test_three_processes_launch(self, procs):
        assert sorted(procs.addresses) == ["osu0", "osu1", "osu2"]
        assert procs.alive() == {"osu0": True, "osu1": True, "osu2": True}
        assert procs.url.startswith("tcp://")
        assert procs.url.count(",") == 2

    def test_remote_bit_identical_to_local(self, procs, local_reference):
        with procs.connect() as db:
            remote = db.query(SQL)
        assert_tables_equal(remote, local_reference)
        # Bit-identical, not just equal-as-multisets: exact bytes after
        # canonical ordering.
        for name in remote.column_names:
            a = remote.canonical()[name]
            b = local_reference.canonical()[name]
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)

    def test_select_star_and_empty_result(self, procs, cluster_dataset):
        text, root = cluster_dataset
        with procs.connect() as db, repro.connect(
            f"local://{root}", descriptor=text
        ) as ref:
            sql = "SELECT * FROM IparsData WHERE REL = 1 AND TIME = 3"
            assert_tables_equal(db.query(sql), ref.query(sql))
            empty = db.query("SELECT X FROM IparsData WHERE TIME > 999")
            assert empty.num_rows == 0

    def test_stats_travel_from_nodes(self, procs):
        with procs.connect() as db:
            db.drop_caches()  # earlier tests warmed the node segment caches
            result = db.submit(SQL)
        nodes = {"osu0", "osu1", "osu2"}
        assert nodes <= set(result.per_node_stats)  # plus "_transfer"
        assert all(
            result.per_node_stats[n].bytes_read > 0 for n in nodes
        )
        assert result.total_stats.bytes_read == sum(
            s.bytes_read for s in result.per_node_stats.values()
        )

    def test_remote_drop_caches(self, procs):
        with procs.connect() as db:
            db.query(SQL)
            db.drop_caches()
            db.query(SQL)

    def test_query_iter_batches(self, procs, local_reference):
        from repro.core.table import concat_tables

        with procs.connect(batch_rows=64) as db:
            batches = list(db.query_iter(SQL))
        assert len(batches) > 1
        assert all(b.num_rows <= 64 for b in batches[:-1])
        assert_tables_equal(concat_tables(batches), local_reference)

    def test_missing_node_rejected_at_connect(self, procs, cluster_dataset):
        text, _ = cluster_dataset
        # A URL that only covers two of the three storage nodes must be
        # rejected up front, not fail mid-query.
        partial_url = "tcp://" + ",".join(
            f"{h}:{p}"
            for n, (h, p) in sorted(procs.addresses.items())
            if n != "osu2"
        )
        with pytest.raises(StormError, match="osu2"):
            repro.connect(partial_url, descriptor=text)


class TestClusterChaos:
    def test_conn_reset_recovers_with_retries(self, cluster_dataset, local_reference):
        text, root = cluster_dataset
        rules = ["conn-reset:osu1:*:times=1"]
        with ProcessCluster(text, root, rules=rules, seed=7) as cluster:
            with cluster.connect(retries=2, retry_backoff=0.01) as db:
                result = db.submit(SQL)
        assert not result.degraded
        assert result.failed_nodes == []
        assert_tables_equal(result.table, local_reference)

    def test_unlimited_conn_reset_degrades(self, cluster_dataset):
        text, root = cluster_dataset
        rules = ["conn-reset:osu1"]
        with ProcessCluster(text, root, rules=rules, seed=7) as cluster:
            with cluster.connect(
                retries=1, retry_backoff=0.01, allow_partial=True
            ) as db:
                result = db.submit(SQL)
        assert result.degraded
        assert result.failed_nodes == ["osu1"]
        assert set(result.table["REL"]) <= {0, 1}

    def test_unlimited_conn_reset_without_partial_raises(self, cluster_dataset):
        text, root = cluster_dataset
        rules = ["conn-reset:osu1"]
        with ProcessCluster(text, root, rules=rules, seed=7) as cluster:
            with cluster.connect(retries=1, retry_backoff=0.01) as db:
                with pytest.raises(NodeFailureError):
                    db.submit(SQL)

    def test_process_killed_mid_session_degrades(self, cluster_dataset):
        # connect() dials every node eagerly, so the process must die
        # *after* the handshake to exercise the mid-session path.
        text, root = cluster_dataset
        with ProcessCluster(text, root) as cluster:
            with cluster.connect(
                retries=1, retry_backoff=0.01, allow_partial=True,
                connect_timeout=2.0,
            ) as db:
                full = db.submit(SQL)
                cluster.kill_node("osu2")
                result = db.submit(SQL)
        assert not full.degraded
        assert result.degraded
        assert result.failed_nodes == ["osu2"]

    def test_connect_to_dead_node_is_transport_error(self, cluster_dataset):
        from repro.errors import TransportError

        text, root = cluster_dataset
        with ProcessCluster(text, root) as cluster:
            cluster.kill_node("osu2")
            with pytest.raises(TransportError, match="no node server"):
                cluster.connect(connect_timeout=2.0)


AGG_SQL = (
    "SELECT REL, COUNT(*), SUM(SOIL), AVG(SOIL), MIN(SOIL), MAX(SOIL) "
    "FROM IparsData WHERE TIME > 1 AND TIME <= 6 GROUP BY REL"
)


class TestClusterAggregates:
    """Aggregate pushdown over real OS processes and real sockets."""

    def test_aggregate_bit_identical_to_local(self, procs, cluster_dataset):
        text, root = cluster_dataset
        with repro.connect(f"local://{root}", descriptor=text) as ref:
            local = ref.query(AGG_SQL)
        with procs.connect() as db:
            remote = db.query(AGG_SQL)
        assert remote.column_names == local.column_names
        for name in remote.column_names:
            a, b = remote[name], local[name]
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)

    def test_partial_frames_cross_the_wire_not_rows(self, procs):
        """The transfer carries per-node state frames: a few rows per
        node, far fewer bytes than the filtered base rows."""
        with procs.connect() as db:
            agg = db.submit(AGG_SQL)
            rows = db.submit(SQL)
        agg_sent = sum(s.bytes_sent for s in agg.per_node_stats.values())
        rows_sent = sum(s.bytes_sent for s in rows.per_node_stats.values())
        assert 0 < agg_sent < rows_sent
        node_stats = {
            k: v for k, v in agg.per_node_stats.items()
            if not k.startswith("_")
        }
        assert sum(s.rows_aggregated for s in node_stats.values()) > 0

    def test_summary_count_answers_without_touching_nodes(self, procs):
        with procs.connect() as db:
            result = db.submit("SELECT COUNT(*) FROM IparsData")
        assert result.table["COUNT(*)"][0] == (
            CLUSTER_IPARS.num_rels * CLUSTER_IPARS.num_times
            * CLUSTER_IPARS.cells_per_node * CLUSTER_IPARS.num_nodes
        )
        real_nodes = [
            k for k in result.per_node_stats if not k.startswith("_")
        ]
        assert real_nodes == []

    def test_degraded_aggregate_marked_partial(self, cluster_dataset):
        """A lost node's partials are dropped and the result is marked
        degraded — never a silently under-counted 'full' answer."""
        text, root = cluster_dataset
        with ProcessCluster(text, root) as cluster:
            with cluster.connect(
                retries=1, retry_backoff=0.01, allow_partial=True,
                connect_timeout=2.0,
            ) as db:
                full = db.submit(AGG_SQL)
                cluster.kill_node("osu1")
                partial = db.submit(AGG_SQL)
        assert not full.degraded
        assert partial.degraded
        assert partial.failed_nodes == ["osu1"]
        assert (
            partial.table["COUNT(*)"].sum() < full.table["COUNT(*)"].sum()
        )


class TestClusterCli:
    def test_cluster_command_full_result(self, cluster_dataset, capsys, tmp_path):
        from repro.cli import main

        text, root = cluster_dataset
        desc = tmp_path / "cluster.desc"
        desc.write_text(text)
        rc = main(
            ["cluster", str(desc), SQL, "--root", root, "--retries", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "DEGRADED" not in out

    def test_cluster_command_degraded_exit_code(
        self, cluster_dataset, capsys, tmp_path
    ):
        from repro.cli import main

        text, root = cluster_dataset
        desc = tmp_path / "cluster.desc"
        desc.write_text(text)
        rc = main(
            [
                "cluster", str(desc), SQL, "--root", root,
                "--rule", "conn-reset:osu1", "--retries", "1",
                "--backoff", "0.01",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 3
        assert "DEGRADED" in out
