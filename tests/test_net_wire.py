"""Wire-protocol unit tests: framing and serialization, no processes."""

import socket

import numpy as np
import pytest

from repro.core import ExecOptions, GeneratedDataset
from repro.core.stats import IOStats
from repro.errors import (
    ExtractionError,
    InjectedFault,
    RemoteError,
    TransportError,
)
from repro.net import framing, wire
from repro.sql import parse_query
from tests.conftest import assert_tables_equal


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            framing.write_frame(a, framing.BATCH, b"hello bytes")
            kind, payload = framing.read_frame(b)
            assert kind == framing.BATCH
            assert payload == b"hello bytes"
        finally:
            a.close()
            b.close()

    def test_empty_payload(self):
        a, b = socket.socketpair()
        try:
            framing.write_frame(a, framing.PING)
            kind, payload = framing.read_frame(b)
            assert kind == framing.PING
            assert payload == b""
        finally:
            a.close()
            b.close()

    def test_json_frame(self):
        a, b = socket.socketpair()
        try:
            framing.write_json(a, framing.DONE, {"rows": 7, "batches": 2})
            kind, payload = framing.read_frame(b)
            assert kind == framing.DONE
            assert framing.decode_json(payload) == {"rows": 7, "batches": 2}
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_is_connection_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x04\x00\x00")  # half a header, then hang up
            a.close()
            with pytest.raises(ConnectionError):
                framing.read_frame(b)
        finally:
            b.close()

    def test_oversized_length_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(
                framing._HEADER.pack(
                    framing.BATCH, framing.MAX_FRAME_BYTES + 1
                )
            )
            with pytest.raises(TransportError, match="frame"):
                framing.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_malformed_json_is_transport_error(self):
        with pytest.raises(TransportError):
            framing.decode_json(b"{nope")

    def test_kind_names(self):
        assert framing.kind_name(framing.EXECUTE) == "EXECUTE"
        assert framing.kind_name(250) == "kind#250"


# ---------------------------------------------------------------------------
# WHERE AST
# ---------------------------------------------------------------------------


WHERE_QUERIES = [
    "SELECT X FROM D WHERE TIME > 3",
    "SELECT X FROM D WHERE REL in (0, 2) AND TIME <= 9",
    "SELECT X FROM D WHERE TIME BETWEEN 2 AND 8 OR NOT (X < 1.5)",
    "SELECT X FROM D WHERE SPEED(SPEED1, SPEED2) > 0.5 AND REL = 1",
]


class TestWhereRoundtrip:
    @pytest.mark.parametrize("sql", WHERE_QUERIES)
    def test_roundtrip(self, sql):
        where = parse_query(sql).where
        assert where is not None
        decoded = wire.decode_where(wire.encode_where(where))
        # AST nodes are (frozen) dataclasses: equality is structural.
        assert decoded == where

    def test_none_passes_through(self):
        assert wire.encode_where(None) is None
        assert wire.decode_where(None) is None

    def test_unknown_tag_rejected(self):
        with pytest.raises(TransportError, match="unknown AST tag"):
            wire.decode_where({"t": "mystery"})


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def ipars_plan(ipars_l0):
    _, text, _ = ipars_l0
    dataset = GeneratedDataset(text)
    plan = dataset.plan(
        "SELECT X, Y, SOIL FROM IparsData WHERE TIME > 2 AND TIME <= 9"
    )
    assert plan.afcs, "test needs a non-empty plan"
    return plan


class TestPlanRoundtrip:
    def test_structural_roundtrip(self, ipars_plan):
        encoded = wire.encode_plan(ipars_plan, ipars_plan.afcs)
        decoded = wire.decode_plan(encoded)
        assert decoded.needed == list(ipars_plan.needed)
        assert decoded.output == list(ipars_plan.output)
        assert decoded.where == ipars_plan.where
        assert decoded.dtypes == {
            n: np.dtype(d) for n, d in ipars_plan.dtypes.items()
        }
        assert len(decoded.afcs) == len(ipars_plan.afcs)
        for mine, theirs in zip(decoded.afcs, ipars_plan.afcs):
            assert mine == theirs  # frozen dataclasses: deep equality

    def test_reencode_is_identical(self, ipars_plan):
        """encode -> decode -> encode is a fixed point (incl. strip dedup)."""
        import json

        once = wire.encode_plan(ipars_plan, ipars_plan.afcs)
        decoded = wire.decode_plan(once)
        twice = wire.encode_plan(decoded, decoded.afcs)
        assert json.dumps(once, sort_keys=True) == json.dumps(
            twice, sort_keys=True
        )

    def test_strips_are_deduplicated(self, ipars_plan):
        encoded = wire.encode_plan(ipars_plan, ipars_plan.afcs)
        total_chunks = sum(len(a["chunks"]) for a in encoded["afcs"])
        assert len(encoded["strips"]) < total_chunks

    def test_json_serializable(self, ipars_plan):
        import json

        blob = json.dumps(wire.encode_plan(ipars_plan, ipars_plan.afcs))
        decoded = wire.decode_plan(json.loads(blob))
        assert decoded.afcs == list(ipars_plan.afcs)


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def _table(rows=100):
    from repro.core.table import VirtualTable

    rng = np.random.default_rng(7)
    return VirtualTable(
        {
            "REL": rng.integers(0, 4, rows).astype(np.int16),
            "TIME": np.arange(rows, dtype=np.int32),
            "X": rng.random(rows).astype(np.float32),
            "SOIL": rng.random(rows).astype(np.float64),
        },
        order=["REL", "TIME", "X", "SOIL"],
    )


class TestTableRoundtrip:
    def test_roundtrip_preserves_dtypes_and_values(self):
        table = _table()
        decoded = wire.decode_table(wire.encode_table(table))
        assert decoded.column_names == table.column_names
        for name in table.column_names:
            assert decoded[name].dtype == table[name].dtype
            np.testing.assert_array_equal(decoded[name], table[name])

    def test_zero_rows(self):
        table = _table(rows=0)
        decoded = wire.decode_table(wire.encode_table(table))
        assert decoded.num_rows == 0
        assert decoded.column_names == table.column_names

    def test_non_contiguous_columns(self):
        from repro.core.table import VirtualTable

        backing = np.arange(40, dtype=np.float64).reshape(2, 20)
        table = VirtualTable({"A": backing[:, 3]}, order=["A"])
        decoded = wire.decode_table(wire.encode_table(table))
        np.testing.assert_array_equal(decoded["A"], backing[:, 3])

    def test_truncated_payload_rejected(self):
        payload = wire.encode_table(_table())
        with pytest.raises(TransportError, match="truncated"):
            wire.decode_table(payload[:-5])
        with pytest.raises(TransportError):
            wire.decode_table(b"\x00")

    def test_assert_tables_equal_through_wire(self):
        table = _table()
        assert_tables_equal(
            table, wire.decode_table(wire.encode_table(table))
        )


# ---------------------------------------------------------------------------
# Options, stats, errors
# ---------------------------------------------------------------------------


class TestOptionsStatsErrors:
    def test_options_only_node_fields_travel(self):
        opts = ExecOptions(
            batch_rows=123,
            coalesce_gap_bytes=0,
            intra_node_workers=3,
            retries=9,
            cache_mode="subsume",
        )
        decoded = wire.decode_options(wire.encode_options(opts))
        assert decoded.batch_rows == 123
        assert decoded.coalesce_gap_bytes == 0
        assert decoded.intra_node_workers == 3
        # Coordinator-only business never reaches the node server.
        assert decoded.retries == 0
        assert decoded.cache_mode == "off"
        assert decoded.remote is False

    def test_unknown_option_keys_ignored(self):
        decoded = wire.decode_options({"batch_rows": 5, "hacked": True})
        assert decoded.batch_rows == 5

    def test_stats_roundtrip(self):
        stats = IOStats()
        stats.bytes_read = 1234
        stats.read_calls = 7
        decoded = wire.decode_stats(wire.encode_stats(stats))
        assert decoded.bytes_read == 1234
        assert decoded.read_calls == 7

    def test_injected_fault_keeps_type(self):
        err = wire.decode_error(
            wire.encode_error(InjectedFault("injected node-down")), "osu1"
        )
        assert isinstance(err, InjectedFault)
        assert "osu1" in str(err)

    def test_retryable_collapses_to_extraction_error(self):
        err = wire.decode_error(
            wire.encode_error(ExtractionError("short read")), "osu0"
        )
        assert isinstance(err, ExtractionError)
        assert not isinstance(err, InjectedFault)

    def test_oserror_is_retryable(self):
        payload = wire.encode_error(OSError("disk on fire"))
        assert payload["retryable"]

    def test_programming_error_is_remote_error(self):
        err = wire.decode_error(
            wire.encode_error(KeyError("oops")), "osu2"
        )
        assert isinstance(err, RemoteError)
        assert "KeyError" in str(err)
