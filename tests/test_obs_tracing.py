"""Tests for the query-lifecycle observability subsystem (repro.obs)."""

import json
import threading

import pytest

from repro.core import ExecOptions, GeneratedDataset, Virtualizer
from repro.datasets import IparsConfig, ipars
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    TraceContext,
    Tracer,
    as_tracer,
    chrome_trace,
    read_chrome_trace,
    spans_from_chrome,
    tree_summary,
    write_chrome_trace,
)
from repro.storm import QueryService, VirtualCluster


# ---------------------------------------------------------------------------
# Tracer and span mechanics
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("query") as outer:
            with tracer.span("plan") as mid:
                with tracer.span("index") as inner:
                    pass
        assert outer.parent_id is None
        assert mid.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id
        assert [s.name for s in tracer.spans] == ["query", "plan", "index"]

    def test_durations_and_cpu_recorded(self):
        tracer = Tracer()
        with tracer.span("work"):
            sum(range(10000))
        (span,) = tracer.spans
        assert span.finished
        assert span.duration > 0
        assert span.cpu_seconds >= 0

    def test_tags_merge(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.tag(b=2)
        assert tracer.spans[0].tags == {"a": 1, "b": 2}

    def test_events_are_zero_duration(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            tracer.event("cache_hit", path="f")
        (event,) = tracer.find("cache_hit")
        assert event.phase == "i"
        assert event.duration == 0.0
        assert event.parent_id == parent.span_id

    def test_exception_tags_error_and_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = tracer.spans
        assert span.finished
        assert span.tags["error"].startswith("ValueError")

    def test_stage_seconds_sums_by_name(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        stages = tracer.stage_seconds()
        assert set(stages) == {"a", "b"}
        assert stages["a"] >= 0

    def test_cross_thread_parenting_via_context(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            ctx = TraceContext(tracer, root)

            def work(i):
                with ctx.span("worker", i=i):
                    pass

            threads = [threading.Thread(target=work, args=(i,)) for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        workers = [s for s in tracer.spans if s.name == "worker"]
        assert len(workers) == 3
        assert all(s.parent_id == root.span_id for s in workers)


class TestDisabledTracer:
    def test_null_tracer_is_disabled_singleton(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_null_span_is_shared_and_inert(self):
        a = NULL_TRACER.span("x", tag=1)
        b = NULL_TRACER.span("y")
        assert a is b  # one shared no-op instance, no allocation per span
        with a as span:
            span.tag(more=2)  # must not raise
        NULL_TRACER.event("nothing")

    def test_as_tracer_resolution(self):
        assert as_tracer(None) is NULL_TRACER
        assert as_tracer(False) is NULL_TRACER
        assert isinstance(as_tracer(True), Tracer)
        existing = Tracer()
        assert as_tracer(existing) is existing


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("reads").inc(3)
        reg.gauge("depth").set(7)
        reg.histogram("bytes").observe(100)
        reg.histogram("bytes").observe(5000)
        out = reg.as_dict()
        assert out["counters"]["reads"] == 3
        assert out["gauges"]["depth"] == 7
        assert out["histograms"]["bytes"]["count"] == 2

    def test_record_stats_ingests_iostats(self):
        from repro.core import IOStats

        stats = IOStats()
        stats.bytes_read = 1024
        stats.files_opened = 2
        reg = MetricsRegistry()
        reg.record_stats(stats, prefix="io.")
        counters = reg.as_dict()["counters"]
        assert counters["io.bytes_read"] == 1024
        assert counters["io.files_opened"] == 2


# ---------------------------------------------------------------------------
# Export round-trip
# ---------------------------------------------------------------------------


class TestChromeExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("query", sql="SELECT 1") as q:
            with tracer.span("plan"):
                tracer.event("cache_hit")
        return tracer

    def test_json_round_trip(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, path)  # pathlib.Path accepted
        payload = read_chrome_trace(path)
        assert payload["displayTimeUnit"] == "ms"
        json.dumps(payload)  # fully serialisable
        spans = spans_from_chrome(payload)
        by_name = {s["name"]: s for s in spans}
        assert by_name["plan"]["parent_id"] == by_name["query"]["span_id"]
        assert by_name["cache_hit"]["phase"] == "i"
        assert by_name["query"]["tags"]["sql"] == "SELECT 1"

    def test_chrome_events_use_microseconds(self):
        tracer = self._traced()
        payload = chrome_trace(tracer)
        x_events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in x_events)
        assert {"query", "plan"} == {e["name"] for e in x_events}

    def test_tree_summary_renders(self):
        tracer = self._traced()
        text = tree_summary(tracer)
        assert "query" in text and "plan" in text
        assert "cache_hit" in text


# ---------------------------------------------------------------------------
# End-to-end: spans from a real pipeline run
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_storm(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs_storm")
    config = IparsConfig(num_rels=2, num_times=6, cells_per_node=20, num_nodes=2)
    cluster = VirtualCluster.create(str(root), config.num_nodes)
    text, _ = ipars.generate(config, "L0", cluster.mount())
    service = QueryService(GeneratedDataset(text), cluster)
    yield config, service
    service.close()


class TestPipelineTracing:
    def test_submit_produces_stage_spans(self, traced_storm):
        _, service = traced_storm
        tracer = Tracer()
        result = service.submit(
            "SELECT X, SOIL FROM IparsData WHERE TIME <= 3 AND SOIL >= 0.0",
            ExecOptions(trace=tracer, num_clients=2, remote=True),
        )
        assert result.trace is tracer
        names = {s.name for s in tracer.spans}
        assert {"query", "plan", "index", "extract", "filter",
                "partition", "mover"} <= names
        # One "extract" span per node, parented under the query root.
        (root,) = tracer.find("query")
        extracts = [s for s in tracer.spans if s.name == "extract"]
        assert len(extracts) == 2
        assert {s.tags["node"] for s in extracts} == {"osu0", "osu1"}
        assert all(s.parent_id == root.span_id for s in extracts)
        # Result rows surface as tags on the root span.
        assert root.tags["rows"] == result.num_rows

    def test_submit_records_io_metrics(self, traced_storm):
        _, service = traced_storm
        service.drop_caches()  # warm segment caches would zero bytes_read
        tracer = Tracer()
        service.submit(
            "SELECT X FROM IparsData WHERE TIME = 1",
            ExecOptions(trace=tracer, remote=False),
        )
        counters = tracer.metrics.as_dict()["counters"]
        assert any(k.endswith("bytes_read") and v > 0
                   for k, v in counters.items())

    def test_untraced_submit_has_no_trace(self, traced_storm):
        _, service = traced_storm
        result = service.submit(
            "SELECT X FROM IparsData WHERE TIME = 1",
            ExecOptions(remote=False),
        )
        assert result.trace is None

    def test_traced_equals_untraced_results(self, traced_storm):
        from tests.conftest import assert_tables_equal

        _, service = traced_storm
        sql = "SELECT X, SOIL FROM IparsData WHERE TIME <= 2"
        plain = service.submit(sql, ExecOptions(remote=False))
        traced = service.submit(sql, ExecOptions(remote=False, trace=True))
        assert_tables_equal(plain.table, traced.table)

    def test_virtualizer_query_traces(self, ipars_l0):
        _, text, mount = ipars_l0
        tracer = Tracer()
        with Virtualizer(text, mount) as v:
            v.query(
                "SELECT X FROM IparsData WHERE TIME = 1",
                options=ExecOptions(trace=tracer),
            )
        names = {s.name for s in tracer.spans}
        assert {"query", "plan", "index", "extract"} <= names
