"""Property test: random layouts round-trip through the whole pipeline.

Hypothesis draws a layout *configuration* — how three measured attributes
are split across leaf datasets, each leaf's loop nesting order, record
versus variable-as-array placement, directory count, and an optional
realization (REL) binding.  The test then:

1. renders the descriptor text and materialises the dataset on disk with a
   deterministic value function,
2. answers ``SELECT *`` and range/filter queries through the *generated*
   index function,
3. compares against a brute-force numpy materialisation of the virtual
   table semantics.

This exercises the metadata parser, validator, strip linearisation, group
join, alignment, code generation, chunk extraction, and filtering in one
oracle-checked sweep.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Virtualizer, local_mount
from repro.datasets.writers import hash01

ATTRS = ("A", "B", "C")

#: Loop structures a leaf can use: T-major tuples, G-major tuples,
#: G-only (time-invariant, coords-style), and T-major variable-as-array.
SHAPES = ("TG", "GT", "G", "TG_ARRAYS")


@st.composite
def layout_configs(draw):
    num_dirs = draw(st.integers(1, 2))
    num_times = draw(st.integers(2, 4))
    cells = draw(st.integers(2, 3))
    # Partition A, B, C into 1..3 leaves.
    assignment = draw(st.lists(st.integers(0, 2), min_size=3, max_size=3))
    groups = {}
    for attr, leaf_id in zip(ATTRS, assignment):
        groups.setdefault(leaf_id, []).append(attr)
    leaves = []
    for leaf_attrs in groups.values():
        shape = draw(st.sampled_from(SHAPES))
        with_rel = draw(st.booleans())
        leaves.append((tuple(leaf_attrs), shape, with_rel))
    return num_dirs, num_times, cells, tuple(leaves)


def build_descriptor(config) -> str:
    num_dirs, num_times, cells, leaves = config
    uses_t = any(shape != "G" for _, shape, _ in leaves)
    uses_rel = any(with_rel for _, _, with_rel in leaves)
    schema = ["[S]"]
    if uses_rel:
        schema.append("REL = short int")
    if uses_t:
        schema.append("T = int")
    schema.extend(f"{a} = float" for a in ATTRS)
    storage = ["[D]", "DatasetDescription = S"]
    storage.extend(f"DIR[{i}] = n{i}/data" for i in range(num_dirs))

    grid = f"($DIRID*{cells}+1):(($DIRID+1)*{cells}):1"
    body = ['DATASET "D" {']
    if uses_t:
        body.append("  DATAINDEX { T }")
    body.append(
        "  DATA { " + " ".join(f"DATASET leaf{i}" for i in range(len(leaves))) + " }"
    )
    for i, (attrs, shape, with_rel) in enumerate(leaves):
        record = " ".join(attrs)
        if shape == "TG":
            space = f"LOOP T 1:{num_times}:1 {{ LOOP G {grid} {{ {record} }} }}"
        elif shape == "GT":
            space = f"LOOP G {grid} {{ LOOP T 1:{num_times}:1 {{ {record} }} }}"
        elif shape == "G":
            space = f"LOOP G {grid} {{ {record} }}"
        else:  # TG_ARRAYS
            arrays = " ".join(f"LOOP G {grid} {{ {a} }}" for a in attrs)
            space = f"LOOP T 1:{num_times}:1 {{ {arrays} }}"
        bindings = f"DIRID = 0:{num_dirs - 1}:1"
        pattern = f"DIR[$DIRID]/leaf{i}"
        if with_rel:
            pattern += "_r$REL"
            bindings += " REL = 0:1:1"
        body.append(f'  DATASET "leaf{i}" {{')
        body.append(f"    DATASPACE {{ {space} }}")
        body.append(f"    DATA {{ {pattern} {bindings} }}")
        body.append("  }")
    body.append("}")
    return "\n".join(schema + [""] + storage + [""] + body)


def attr_dependencies(config):
    """Which row variables each attribute's stored value may depend on."""
    _, _, _, leaves = config
    deps = {}
    for attrs, shape, with_rel in leaves:
        vars_ = {"G"}
        if shape != "G":
            vars_.add("T")
        if with_rel:
            vars_.add("REL")
        for a in attrs:
            deps[a] = vars_
    return deps


def make_value_fn(config):
    deps = attr_dependencies(config)
    salt = {a: i + 1 for i, a in enumerate(ATTRS)}

    def value_fn(attr, env, coords):
        def var(name):
            if name in coords:
                return coords[name]
            return np.int64(env.get(name, 0))

        key = np.int64(0)
        if "REL" in deps[attr]:
            key = key * 7 + var("REL")
        if "T" in deps[attr]:
            key = key * 31 + var("T")
        key = key * 101 + var("G")
        return hash01(key, salt[attr])

    return value_fn


def brute_force_rows(config):
    """Expected SELECT * rows as a set of value tuples."""
    num_dirs, num_times, cells, leaves = config
    deps = attr_dependencies(config)
    uses_t = any(shape != "G" for _, shape, _ in leaves)
    uses_rel = any(with_rel for _, _, with_rel in leaves)
    salt = {a: i + 1 for i, a in enumerate(ATTRS)}

    t_values = range(1, num_times + 1) if uses_t else [None]
    rel_values = range(2) if uses_rel else [None]
    rows = []
    for dirid in range(num_dirs):
        g_values = range(dirid * cells + 1, (dirid + 1) * cells + 1)
        for rel, t, g in itertools.product(rel_values, t_values, g_values):
            row = []
            if uses_rel:
                row.append(rel)
            if uses_t:
                row.append(t)
            for a in ATTRS:
                key = 0
                if "REL" in deps[a]:
                    key = key * 7 + (rel or 0)
                if "T" in deps[a]:
                    key = key * 31 + (t or 0)
                key = key * 101 + g
                value = np.float32(hash01(np.array([key]), salt[a])[0])
                row.append(value)
            rows.append(tuple(row))
    return rows


@given(layout_configs())
@settings(max_examples=25, deadline=None)
def test_random_layout_roundtrip(config):
    import tempfile

    num_dirs, num_times, cells, leaves = config
    root = tempfile.mkdtemp(prefix="repro-prop-")
    mount = local_mount(str(root))
    text = build_descriptor(config)

    from repro.core import CompiledDataset
    from repro.datasets.writers import write_dataset

    dataset = CompiledDataset(text)
    write_dataset(dataset, mount, make_value_fn(config))

    with Virtualizer(text, mount, use_codegen=True) as v:
        table = v.query("SELECT * FROM D")
        got = sorted(
            tuple(float(x) for x in row) for row in table.rows()
        )
        expected = sorted(
            tuple(float(x) for x in row) for row in brute_force_rows(config)
        )
        assert got == expected

        # A filtered query agrees with filtering the brute-force rows.
        table_f = v.query("SELECT A FROM D WHERE A > 0.5")
        a_index = table.column_names.index("A")
        expected_a = sorted(
            row[a_index] for row in expected if row[a_index] > 0.5
        )
        got_a = sorted(float(x) for x in table_f["A"])
        assert got_a == pytest.approx(expected_a)

        # Generated and interpreted planners agree on a range query.
        uses_t = any(shape != "G" for _, shape, _ in leaves)
        if uses_t and num_times >= 3:
            sql = "SELECT * FROM D WHERE T >= 2 AND T <= 3"
            with Virtualizer(text, mount, use_codegen=False) as vi:
                t1 = v.query(sql).canonical()
                t2 = vi.query(sql).canonical()
                assert t1.num_rows == t2.num_rows
                for name in t1.column_names:
                    np.testing.assert_array_equal(t1[name], t2[name])

    import shutil

    shutil.rmtree(root, ignore_errors=True)
