"""Property tests for dataspace linearisation invariants.

Hypothesis draws random dataspace trees (nested loops + attribute groups)
and checks the structural invariants every layout must satisfy:

* the byte spans of all strips tile the file exactly — no gaps, no
  overlaps, total equal to the computed file size;
* every record address computed via (base_offset + ordinal * stride) is
  unique and in bounds;
* the dense-suffix computation is sound: scanning a dense suffix's worth
  of consecutive records really is contiguous in the file.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadata import parse_descriptor
from repro.core.strips import build_strips, enumerate_files

ATTRS = ["A", "B", "C", "D"]
SIZES = {"A": 4, "B": 4, "C": 8, "D": 2}
TYPES = {"A": "float", "B": "int", "C": "double", "D": "short int"}


@st.composite
def _geometries(draw):
    """One fixed geometry per loop variable: a variable may appear in
    several sibling loops (variable-as-array layouts), but must iterate
    identically everywhere within a file."""
    out = {}
    for var in ["T", "G", "K"]:
        lo = draw(st.integers(0, 3))
        count = draw(st.integers(1, 4))
        step = draw(st.integers(1, 2))
        out[var] = (lo, lo + (count - 1) * step, step)
    return out


@st.composite
def _tree_body(draw, geometries, depth, var_pool, attr_pool):
    items = []
    n_items = draw(st.integers(1, 2 if depth else 3))
    for _ in range(n_items):
        if not attr_pool:
            break
        make_loop = var_pool and depth < 3 and draw(st.booleans())
        if make_loop:
            var = draw(st.sampled_from(var_pool))
            lo, hi, step = geometries[var]
            remaining = [v for v in var_pool if v != var]
            body = draw(
                _tree_body(geometries, depth + 1, remaining, attr_pool)
            )
            if not body:
                continue
            items.append(("loop", var, lo, hi, step, body))
        else:
            k = draw(st.integers(1, min(2, len(attr_pool))))
            group = [attr_pool.pop(0) for _ in range(k)]
            items.append(("group", tuple(group)))
    return items


@st.composite
def space_trees(draw, depth=0):
    """A random dataspace body: list of loops/attribute groups.

    The attribute pool is shared across the whole tree (each attribute is
    stored once per leaf); loop variables never shadow along a path and
    always iterate with one per-variable geometry.
    """
    geometries = draw(_geometries())
    return draw(
        _tree_body(geometries, depth, ["T", "G", "K"], list(ATTRS))
    )


def used_attrs(items) -> List[str]:
    out = []
    for item in items:
        if item[0] == "group":
            out.extend(item[1])
        else:
            out.extend(used_attrs(item[5]))
    return out


def render(items, indent="    ") -> str:
    lines = []
    for item in items:
        if item[0] == "group":
            lines.append(indent + " ".join(item[1]))
        else:
            _, var, lo, hi, step, body = item
            lines.append(f"{indent}LOOP {var} {lo}:{hi}:{step} {{")
            lines.append(render(body, indent + "  "))
            lines.append(indent + "}")
    return "\n".join(lines)


def make_descriptor(items) -> str:
    attrs = used_attrs(items)
    if not attrs:
        items = [("group", ("A",))]
        attrs = ["A"]
    schema_lines = [f"{a} = {TYPES[a]}" for a in dict.fromkeys(attrs)]
    # Loop vars that are schema-attrs? none here; add T/G/K nowhere.
    return (
        "[S]\n" + "\n".join(schema_lines) + "\n\n"
        "[D]\nDatasetDescription = S\nDIR[0] = n0/d\n\n"
        'DATASET "D" {\n  DATASPACE {\n' + render(items) + "\n  }\n"
        "  DATA { DIR[0]/f }\n}\n"
    )


@given(space_trees())
@settings(max_examples=200, deadline=None)
def test_strips_tile_the_file_exactly(items):
    text = make_descriptor(items)
    descriptor = parse_descriptor(text)
    (file,) = enumerate_files(descriptor)

    # Enumerate every record's byte span across all strips.
    spans: List[Tuple[int, int]] = []
    for strip in file.strips:
        from itertools import product

        axes = [range(d.count) for d in strip.dims]
        for ordinals in product(*axes) if axes else [()]:
            offset = strip.base_offset + sum(
                o * d.byte_stride for o, d in zip(ordinals, strip.dims)
            )
            spans.append((offset, offset + strip.record_size))

    spans.sort()
    # No overlaps or gaps; full coverage.
    assert spans[0][0] == 0
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert end == start, f"gap or overlap at byte {end} in\n{text}"
    assert spans[-1][1] == file.expected_size


@given(space_trees())
@settings(max_examples=150, deadline=None)
def test_dense_suffix_is_actually_dense(items):
    text = make_descriptor(items)
    descriptor = parse_descriptor(text)
    (file,) = enumerate_files(descriptor)
    for strip in file.strips:
        length = strip.dense_suffix_length()
        if length == 0:
            continue
        dims = strip.dims[len(strip.dims) - length :]
        # Walking the dense sub-space in row-major order advances the
        # offset by exactly record_size each step.
        from itertools import product

        axes = [range(d.count) for d in dims]
        offsets = []
        for ordinals in product(*axes):
            offsets.append(
                sum(o * d.byte_stride for o, d in zip(ordinals, dims))
            )
        assert offsets == [
            i * strip.record_size for i in range(len(offsets))
        ], str(strip)


@given(space_trees())
@settings(max_examples=100, deadline=None)
def test_full_scan_row_count_matches_row_space(items):
    """plan('SELECT *') enumerates exactly the cross product of all loop
    variables — the virtual table's row space."""
    from repro.core import CompiledDataset

    text = make_descriptor(items)
    dataset = CompiledDataset(text)
    plan = dataset.plan("SELECT * FROM D")
    geometry = {}
    for file in dataset.files:
        geometry.update(file.loop_geometry())
    expected = 1
    for start, stop, step in geometry.values():
        expected *= (stop - start) // step + 1
    assert plan.planned_rows == expected
