"""Randomized equivalence harness + engine-level rewrite acceptance.

Part 1 generates ~1000 seeded random predicate trees and checks that the
rewrite pass preserves vectorised evaluation *bit-identically* over
random column data — including a float column seeded with NaNs, the case
that makes classical boolean algebra (law of excluded middle, ``!=`` as
a range complement) unsound here.

Part 2 drives the rewrite through the full engine: commuted/flipped/
constant-folded WHERE spellings share one cache entry, a provably-FALSE
WHERE executes with zero read calls, and rewritten queries return tables
bit-identical to their original spellings.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cache import query_key
from repro.core import ExecOptions, Virtualizer
from repro.core.stats import IOStats
from repro.sql.ast import (
    And,
    Between,
    BoolLiteral,
    Column,
    Comparison,
    FunctionCall,
    InList,
    Literal,
    Not,
    Or,
)
from repro.sql.functions import DEFAULT_REGISTRY
from repro.sql.parser import parse_query, parse_where
from repro.sql.rewrite import rewrite_where
from tests.conftest import assert_tables_equal

# ---------------------------------------------------------------------------
# Part 1: randomized mask equivalence
# ---------------------------------------------------------------------------

N_ROWS = 64
N_TREES = 1000

COLUMNS = ["A", "B", "C"]
OPS = ["=", "==", "!=", "<>", "<", "<=", ">", ">="]
#: Small literal pool so contradictions, subsumptions and overlaps are
#: common — the interesting rewrites actually fire.
VALUES = [-3, -1, 0, 1, 2, 3, 5, 8, 0.5, 2.5, -1.5, 4.0]


def make_columns(rng: random.Random):
    nprng = np.random.default_rng(rng.randrange(2**32))
    b = nprng.uniform(-5.0, 10.0, N_ROWS)
    b[nprng.random(N_ROWS) < 0.25] = np.nan  # NaN-bearing float column
    return {
        "A": nprng.integers(-5, 11, N_ROWS).astype(np.int64),
        "B": b,
        "C": nprng.integers(0, 5, N_ROWS).astype(np.int32),
    }


def rand_operand(rng: random.Random, allow_function: bool):
    roll = rng.random()
    if roll < 0.75 or not allow_function:
        return Column(rng.choice(COLUMNS))
    cols = [Column(rng.choice(COLUMNS)) for _ in range(3)]
    if rng.random() < 0.5:
        return FunctionCall("SPEED", tuple(cols))
    return FunctionCall("DISTANCE", tuple(cols[: rng.randrange(1, 4)]))


def rand_tree(rng: random.Random, depth: int):
    atoms = ("cmp", "cmp", "in", "between", "bool")
    kinds = atoms if depth <= 0 else atoms + ("and", "and", "or", "or", "not")
    kind = rng.choice(kinds)
    if kind == "cmp":
        left = rand_operand(rng, allow_function=True)
        if rng.random() < 0.2:  # literal-vs-literal and literal-left shapes
            left = Literal(rng.choice(VALUES))
        right = (
            Literal(rng.choice(VALUES))
            if rng.random() < 0.8
            else rand_operand(rng, allow_function=False)
        )
        return Comparison(rng.choice(OPS), left, right)
    if kind == "in":
        values = tuple(
            rng.choice(VALUES) for _ in range(rng.randrange(1, 5))
        )
        return InList(rand_operand(rng, allow_function=True), values)
    if kind == "between":
        return Between(
            rand_operand(rng, allow_function=True),
            rng.choice(VALUES),
            rng.choice(VALUES),
        )
    if kind == "bool":
        return BoolLiteral(rng.random() < 0.5)
    if kind == "not":
        return Not(rand_tree(rng, depth - 1))
    terms = tuple(rand_tree(rng, depth - 1) for _ in range(rng.randrange(2, 4)))
    return And(terms) if kind == "and" else Or(terms)


def mask_of(node, columns):
    if node is None:
        return np.ones(N_ROWS, dtype=bool)
    raw = np.asarray(node.evaluate(columns, DEFAULT_REGISTRY), dtype=bool)
    return np.broadcast_to(raw, (N_ROWS,))


class TestRandomizedEquivalence:
    def test_1000_random_trees_evaluate_bit_identically(self):
        rng = random.Random(987654321)
        rewritten_count = 0
        for i in range(N_TREES):
            tree = rand_tree(rng, rng.randrange(1, 5))
            columns = make_columns(rng)
            canonical, steps = rewrite_where(tree)
            if steps:
                rewritten_count += 1
            original = mask_of(tree, columns)
            result = mask_of(canonical, columns)
            np.testing.assert_array_equal(
                original,
                result,
                err_msg=f"case {i}: {tree} rewrote to {canonical}",
            )
            # the canonical tree must itself be valid, parseable AST
            if canonical is not None:
                assert parse_where(str(canonical)) == canonical, str(canonical)
        # the harness is vacuous if the generator never triggers rewrites
        assert rewritten_count > N_TREES // 2

    def test_rewritten_trees_are_a_fixpoint(self):
        rng = random.Random(13579)
        for _ in range(200):
            tree = rand_tree(rng, rng.randrange(1, 5))
            canonical, _ = rewrite_where(tree)
            again, steps = rewrite_where(canonical)
            assert again == canonical
            assert steps == []


# ---------------------------------------------------------------------------
# Part 2: engine-level acceptance
# ---------------------------------------------------------------------------

#: Four spellings of the same predicate: commuted conjuncts, a flipped
#: comparison, a foldable constant, and a duplicated conjunct.
SPELLINGS = [
    "SELECT X, SOIL FROM IparsData WHERE TIME > 2 AND SOIL > 0.1",
    "SELECT X, SOIL FROM IparsData WHERE SOIL > 0.1 AND 2 < TIME",
    "SELECT X, SOIL FROM IparsData WHERE TIME > 2 AND (SOIL > 0.1 AND 1 = 1)",
    "SELECT X, SOIL FROM IparsData WHERE SOIL > 0.1 AND TIME > 2 AND TIME > 2",
]

EXACT = ExecOptions(remote=False, cache_mode="exact")
OFF = ExecOptions(remote=False)


class TestSharedCacheEntry:
    def test_spellings_share_a_query_key(self):
        keys = {
            query_key("fp", parse_query(sql), ("X", "SOIL"))
            for sql in SPELLINGS
        }
        assert len(keys) == 1

    def test_spellings_hit_one_cache_entry(self, ipars_l0):
        _, text, mount = ipars_l0
        with Virtualizer(text, mount) as virt:
            cold = IOStats()
            first = virt.query(SPELLINGS[0], stats=cold, options=EXACT)
            assert cold.result_cache_hits == 0
            assert cold.read_calls > 0
            for sql in SPELLINGS[1:]:
                run = IOStats()
                table = virt.query(sql, stats=run, options=EXACT)
                assert run.result_cache_hits == 1, sql
                assert run.read_calls == 0, sql
                assert_tables_equal(table, first)

    def test_different_predicates_do_not_collide(self):
        a = query_key(
            "fp", parse_query("SELECT X FROM T WHERE TIME > 2"), ("X",)
        )
        b = query_key(
            "fp", parse_query("SELECT X FROM T WHERE TIME > 3"), ("X",)
        )
        assert a != b


class TestProvablyFalseWhere:
    @pytest.mark.parametrize(
        "where",
        [
            "TIME > 5 AND TIME < 3",  # contradictory ranges
            "TIME BETWEEN 5 AND 3",  # inverted BETWEEN
            "TIME = 1 AND TIME = 2",  # contradictory equalities
            "SPEED(X, Y, Z) > 1 AND SPEED(X, Y, Z) <= 1",  # function operand
            "FALSE",
        ],
    )
    def test_zero_read_calls(self, ipars_l0, where):
        _, text, mount = ipars_l0
        with Virtualizer(text, mount) as virt:
            run = IOStats()
            table = virt.query(
                f"SELECT X FROM IparsData WHERE {where}", stats=run, options=OFF
            )
            assert table.num_rows == 0
            assert run.read_calls == 0, where
            assert run.files_opened == 0, where


class TestEngineEquivalence:
    #: (original spelling, equivalent rewritable spelling) WHERE pairs.
    PAIRS = [
        ("TIME > 2 AND SOIL > 0.1", "NOT (TIME <= 2 OR SOIL <= 0.1)"),
        ("TIME >= 3 AND TIME <= 7", "TIME BETWEEN 3 AND 7"),
        ("REL IN (0, 1)", "REL IN (1, 0, 1)"),
        ("TIME > 4", "TIME > 2 AND 4 < TIME"),
        ("SOIL > 0.5 OR TIME = 1", "TIME = 1 OR SOIL > 0.5 OR FALSE"),
    ]

    @pytest.mark.parametrize("left,right", PAIRS)
    def test_rewritten_spelling_returns_identical_table(
        self, ipars_l0, left, right
    ):
        _, text, mount = ipars_l0
        with Virtualizer(text, mount) as virt:
            a = virt.query(
                f"SELECT REL, TIME, X, SOIL FROM IparsData WHERE {left}",
                options=OFF,
            )
            b = virt.query(
                f"SELECT REL, TIME, X, SOIL FROM IparsData WHERE {right}",
                options=OFF,
            )
            assert_tables_equal(a, b)
