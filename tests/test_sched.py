"""Scheduler semantics: fair share, admission, quotas, cancellation.

Ordering tests drive a stub service (deterministic, no I/O); policy
tests (admission, quotas, deadlines) run real queries through a real
:class:`~repro.storm.query_service.QueryService`; the transport tests
assert the same knobs behave identically via ``repro.connect`` on
``local://`` and ``tcp://`` endpoints.
"""

import threading
import time

import pytest

import repro
from repro.core import ExecOptions, GeneratedDataset
from repro.core.options import resolve_workers
from repro.datasets import IparsConfig, ipars
from repro.errors import (
    AdmissionError,
    QueryCancelledError,
    QuotaExceededError,
    SchedulerError,
)
from repro.sched import Scheduler, threads_abandoned
from repro.storm import QueryService, VirtualCluster
from tests.conftest import assert_tables_equal

CONFIG = IparsConfig(num_rels=2, num_times=6, cells_per_node=16, num_nodes=2)
LOCAL = ExecOptions(remote=False)
SCAN = "SELECT REL, TIME, X, SOIL FROM IparsData"
TOTAL_ROWS = 2 * 6 * 16 * CONFIG.num_nodes


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    root = tmp_path_factory.mktemp("sched")
    cluster = VirtualCluster.create(str(root), CONFIG.num_nodes)
    text, _ = ipars.generate(CONFIG, "L0", cluster.mount())
    with QueryService(GeneratedDataset(text), cluster) as service:
        yield service, text, str(root)


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.002)


class StubService:
    """submit() records dispatch order; named queries block on a gate."""

    cost_model = None

    def __init__(self, gates=None):
        self.order = []
        self.gates = gates or {}
        self._lock = threading.Lock()

    def submit(self, sql, opts):
        with self._lock:
            self.order.append(sql)
        gate = self.gates.get(sql)
        if gate is not None:
            assert gate.wait(10), f"gate for {sql!r} never opened"
        return sql


class CooperativeStub:
    """submit() loops forever at cooperative checkpoints."""

    cost_model = None

    def __init__(self):
        self.running = threading.Event()

    def submit(self, sql, opts):
        self.running.set()
        while True:
            opts.run_state.checkpoint()
            time.sleep(0.005)


class TestFairShare:
    def blocked_scheduler(self, **kwargs):
        gate = threading.Event()
        stub = StubService(gates={"BLOCK": gate})
        sched = Scheduler(stub, workers=1, reserve_priority=0, **kwargs)
        blocker = sched.submit("BLOCK", LOCAL.replace(tenant="zz"))
        wait_for(lambda: "BLOCK" in stub.order)
        return stub, sched, gate, blocker

    def test_weighted_fair_share_interleave(self):
        stub, sched, gate, blocker = self.blocked_scheduler(
            weights={"b": 3.0}
        )
        with sched:
            handles = [
                sched.submit(sql, LOCAL.replace(tenant=sql[0]))
                for sql in ("a1", "a2", "a3", "b1", "b2", "b3")
            ]
            gate.set()
            for handle in handles:
                handle.result(timeout=10)
            # Weight 3 earns three dispatches for every one of weight 1:
            # after a1 charges 1/1 of virtual time, b's clock stays
            # behind until it has burned 3 x 1/3.
            assert stub.order == ["BLOCK", "a1", "b1", "b2", "b3", "a2", "a3"]
            assert blocker.result() == "BLOCK"

    def test_fifo_mode_is_arrival_order(self):
        stub, sched, gate, _ = self.blocked_scheduler(weights={"b": 3.0})
        with sched:
            fifo = LOCAL.replace(scheduler="fifo")
            handles = [
                sched.submit(sql, fifo.replace(tenant=sql[0]))
                for sql in ("a1", "b1", "a2", "b2")
            ]
            gate.set()
            for handle in handles:
                handle.result(timeout=10)
            assert stub.order == ["BLOCK", "a1", "b1", "a2", "b2"]

    def test_priority_jumps_every_queue(self):
        stub, sched, gate, _ = self.blocked_scheduler()
        with sched:
            fair = [
                sched.submit(sql, LOCAL.replace(tenant="bulk"))
                for sql in ("f1", "f2")
            ]
            lo = sched.submit("p1", LOCAL.replace(priority=1))
            hi = sched.submit("p2", LOCAL.replace(priority=2))
            gate.set()
            for handle in (*fair, lo, hi):
                handle.result(timeout=10)
            assert stub.order == ["BLOCK", "p2", "p1", "f1", "f2"]

    def test_reserved_worker_is_an_express_lane(self):
        slow_gate = threading.Event()
        stub = StubService(gates={"slow1": slow_gate, "slow2": slow_gate})
        with Scheduler(stub, workers=2, reserve_priority=1) as sched:
            s1 = sched.submit("slow1", LOCAL.replace(tenant="bulk"))
            wait_for(lambda: "slow1" in stub.order)
            s2 = sched.submit("slow2", LOCAL.replace(tenant="bulk"))
            # The general worker is pinned inside slow1 and slow2 can
            # only ever follow it; the reserved worker refuses fair-lane
            # work, so a priority query overtakes both.
            express = sched.submit("vip", LOCAL.replace(priority=1))
            assert express.result(timeout=5) == "vip"
            assert s2.state == "queued"
            slow_gate.set()
            assert s1.result(timeout=5) == "slow1"
            assert s2.result(timeout=5) == "slow2"

    def test_wait_seconds_and_stats_shape(self):
        stub, sched, gate, _ = self.blocked_scheduler()
        with sched:
            handle = sched.submit("q1", LOCAL.replace(tenant="t"))
            assert handle.wait_seconds is None
            gate.set()
            handle.result(timeout=10)
            assert handle.wait_seconds >= 0
            stats = sched.stats()
            assert stats["workers"] == 1
            assert stats["reserved_priority_workers"] == 0
            assert stats["counters"]["sched.dispatched"] >= 2
            assert stats["tenants"]["t"]["queued"] == 0
            assert "t" in stats["wait_seconds"]
            assert "*" in stats["wait_seconds"]
            assert stats["threads_abandoned"] == threads_abandoned()

    def test_submit_after_close_raises(self):
        sched = Scheduler(StubService(), workers=1)
        sched.close()
        with pytest.raises(SchedulerError):
            sched.submit("q", LOCAL)

    def test_close_cancels_queued_work(self):
        gate = threading.Event()
        stub = StubService(gates={"BLOCK": gate})
        sched = Scheduler(stub, workers=1, reserve_priority=0)
        sched.submit("BLOCK", LOCAL)
        wait_for(lambda: "BLOCK" in stub.order)
        queued = sched.submit("never", LOCAL)
        gate.set()
        sched.close()
        assert queued.cancelled()
        with pytest.raises(QueryCancelledError, match="scheduler closed"):
            queued.result(timeout=1)


class TestAdmission:
    def test_reject_over_budget(self, env):
        service, _, _ = env
        with Scheduler(service, workers=1) as sched:
            with pytest.raises(AdmissionError) as info:
                sched.submit(SCAN, LOCAL.replace(admission_budget=1e-9))
            assert info.value.predicted_seconds > 1e-9
            assert info.value.budget_seconds == 1e-9
            assert sched.stats()["counters"]["sched.rejected"] == 1

    def test_queue_over_budget_backfills(self, env):
        service, _, _ = env
        with Scheduler(service, workers=1) as sched:
            handle = sched.submit(
                SCAN,
                LOCAL.replace(admission_budget=1e-9, admission="queue"),
            )
            result = handle.result(timeout=30)
            assert result.num_rows == TOTAL_ROWS
            counters = sched.stats()["counters"]
            assert counters["sched.queued_over_budget"] == 1
            assert "sched.rejected" not in counters

    def test_under_budget_runs_normally(self, env):
        service, _, _ = env
        with Scheduler(service, workers=1) as sched:
            result = sched.run(SCAN, LOCAL.replace(admission_budget=1e9))
            assert result.num_rows == TOTAL_ROWS
            assert "sched.rejected" not in sched.stats()["counters"]


class TestQuotas:
    def test_row_quota_trips_mid_query(self, env):
        service, _, _ = env
        with Scheduler(service, workers=1) as sched:
            handle = sched.submit(SCAN, LOCAL.replace(row_quota=10))
            with pytest.raises(QuotaExceededError, match="row quota"):
                handle.result(timeout=30)
            assert handle.state == "failed"
            assert sched.stats()["counters"]["sched.quota_trips"] == 1

    def test_byte_quota_trips_mid_query(self, env):
        service, _, _ = env
        # Byte quotas meter bytes *read*; a warm segment cache reads
        # nothing, so cold-start the service first.
        service.drop_caches()
        with Scheduler(service, workers=1) as sched:
            with pytest.raises(QuotaExceededError, match="byte quota"):
                sched.run(SCAN, LOCAL.replace(byte_quota=64))

    def test_quota_error_is_not_degraded_away(self, env):
        # allow_partial degrades node *failures*; a quota trip is the
        # caller's budget speaking and must surface even then.
        service, _, _ = env
        with Scheduler(service, workers=1) as sched:
            with pytest.raises(QuotaExceededError):
                sched.run(
                    SCAN,
                    LOCAL.replace(row_quota=10, allow_partial=True, retries=2),
                )

    def test_generous_quota_passes(self, env):
        service, _, _ = env
        with Scheduler(service, workers=1) as sched:
            result = sched.run(
                SCAN, LOCAL.replace(row_quota=TOTAL_ROWS, byte_quota=10**9)
            )
            assert result.num_rows == TOTAL_ROWS


class TestCancellation:
    def test_cancel_queued_tears_down_immediately(self):
        gate = threading.Event()
        stub = StubService(gates={"BLOCK": gate})
        with Scheduler(stub, workers=1, reserve_priority=0) as sched:
            sched.submit("BLOCK", LOCAL)
            wait_for(lambda: "BLOCK" in stub.order)
            queued = sched.submit("victim", LOCAL)
            assert queued.cancel() is True
            assert queued.state == "cancelled"
            with pytest.raises(QueryCancelledError):
                queued.result(timeout=1)
            # Already finished: a second cancel is a no-op.
            assert queued.cancel() is False
            gate.set()
            # The worker skips the cancelled handle; it never dispatches.
            sched.close()
            assert "victim" not in stub.order

    def test_cancel_running_stops_at_checkpoint(self):
        stub = CooperativeStub()
        with Scheduler(stub, workers=1) as sched:
            handle = sched.submit("spin", LOCAL)
            assert stub.running.wait(5)
            assert handle.cancel() is True
            with pytest.raises(QueryCancelledError) as info:
                handle.result(timeout=5)
            assert info.value.reason == "cancelled"
            assert handle.cancelled()
            assert sched.stats()["counters"]["sched.cancelled"] == 1

    def test_cancel_finished_returns_false(self):
        stub = StubService()
        with Scheduler(stub, workers=1) as sched:
            handle = sched.submit("q", LOCAL)
            handle.result(timeout=5)
            assert handle.cancel() is False
            assert handle.state == "done"

    def test_deadline_auto_cancels(self):
        stub = CooperativeStub()
        with Scheduler(stub, workers=1) as sched:
            handle = sched.submit("spin", LOCAL.replace(deadline=0.1))
            with pytest.raises(QueryCancelledError) as info:
                handle.result(timeout=10)
            assert info.value.reason == "deadline"
            counters = sched.stats()["counters"]
            assert counters["sched.deadline_cancelled"] == 1

    def test_deadline_expires_while_queued(self):
        gate = threading.Event()
        stub = StubService(gates={"BLOCK": gate})
        with Scheduler(stub, workers=1, reserve_priority=0) as sched:
            sched.submit("BLOCK", LOCAL)
            wait_for(lambda: "BLOCK" in stub.order)
            queued = sched.submit("victim", LOCAL.replace(deadline=0.05))
            with pytest.raises(QueryCancelledError) as info:
                queued.result(timeout=10)
            assert info.value.reason == "deadline"
            gate.set()


class TestOffMode:
    def test_off_runs_inline_with_no_workers(self, env):
        service, _, _ = env
        with Scheduler(service, workers=4) as sched:
            handle = sched.submit(SCAN, LOCAL.replace(scheduler="off"))
            assert handle.done()
            assert handle.result().num_rows == TOTAL_ROWS
            assert sched.stats()["counters"]["sched.bypassed"] == 1
            # No queued dispatch ever happened: workers never started.
            assert sched._threads == []

    def test_off_stores_error_instead_of_raising(self):
        class Exploding:
            cost_model = None

            def submit(self, sql, opts):
                raise ValueError("boom")

        with Scheduler(Exploding(), workers=1) as sched:
            handle = sched.submit("q", LOCAL.replace(scheduler="off"))
            assert handle.state == "failed"
            with pytest.raises(ValueError, match="boom"):
                handle.result()


class TestClientTransports:
    def test_local_client_schedules(self, env):
        service, text, root = env
        reference = service.submit(SCAN, LOCAL).table
        with repro.connect(f"local://{root}", descriptor=text) as db:
            handle = db.schedule(
                SCAN, LOCAL.replace(tenant="team-a", priority=1)
            )
            assert_tables_equal(handle.result(timeout=30).table, reference)
            assert db.submit(SCAN, LOCAL).num_rows == TOTAL_ROWS
            stats = db.sched_stats()
            assert stats["counters"]["sched.completed"] >= 2
            assert "team-a" in stats["wait_seconds"]
        with pytest.raises(QuotaExceededError):
            db2 = repro.connect(f"local://{root}", descriptor=text)
            try:
                db2.submit(SCAN, LOCAL.replace(row_quota=5))
            finally:
                db2.close()

    def test_tcp_client_schedules_and_enforces_quotas(self, env):
        from repro.net import ProcessCluster

        service, text, root = env
        reference = service.submit(SCAN, LOCAL).table
        with ProcessCluster(text, root) as cluster:
            with cluster.connect() as db:
                handle = db.schedule(
                    SCAN, ExecOptions(tenant="remote", priority=1)
                )
                assert_tables_equal(
                    handle.result(timeout=60).table, reference
                )
                # The run state never crosses the wire: quotas are
                # charged per node partial at the coordinator.
                with pytest.raises(QuotaExceededError):
                    db.submit(SCAN, ExecOptions(row_quota=5))
                counters = db.sched_stats()["counters"]
                assert counters["sched.completed"] >= 1
                assert counters["sched.quota_trips"] >= 1


class TestOptionValidation:
    def test_bad_scheduler_value_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            ExecOptions(scheduler="bogus")

    def test_bad_admission_value_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            ExecOptions(admission="maybe")

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1

    def test_diag_codes_for_nonsense_knobs(self):
        from repro.diag import analyze_options

        codes = [
            d.code
            for d in analyze_options(
                ExecOptions(
                    scheduler_workers=-1,
                    admission_budget=0,
                    row_quota=0,
                    byte_quota=-5,
                    deadline=0,
                    scheduler="off",
                    priority=2,
                )
            )
        ]
        for expected in ("RO309", "RO310", "RO311", "RO312", "RO313"):
            assert expected in codes

    def test_default_options_emit_no_sched_diags(self):
        from repro.diag import analyze_options

        assert analyze_options(ExecOptions()) == []
