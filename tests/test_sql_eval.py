"""Tests for vectorised predicate evaluation and the function registry."""

import numpy as np
import pytest

from repro.errors import QueryValidationError
from repro.sql import DEFAULT_REGISTRY, FunctionRegistry, filter_function, parse_where
from repro.sql.functions import distance, speed


@pytest.fixture
def columns():
    return {
        "A": np.array([1.0, 2.0, 3.0, 4.0]),
        "B": np.array([4.0, 3.0, 2.0, 1.0]),
        "T": np.array([10, 20, 30, 40]),
    }


def evaluate(text, columns, functions=DEFAULT_REGISTRY):
    return np.asarray(parse_where(text).evaluate(columns, functions))


class TestEvaluation:
    def test_comparison(self, columns):
        np.testing.assert_array_equal(
            evaluate("A <= 2", columns), [True, True, False, False]
        )

    def test_and_or(self, columns):
        np.testing.assert_array_equal(
            evaluate("A <= 2 OR B <= 1", columns), [True, True, False, True]
        )
        np.testing.assert_array_equal(
            evaluate("A <= 3 AND B <= 3", columns), [False, True, True, False]
        )

    def test_not(self, columns):
        np.testing.assert_array_equal(
            evaluate("NOT A <= 2", columns), [False, False, True, True]
        )

    def test_in_list(self, columns):
        np.testing.assert_array_equal(
            evaluate("T IN (10, 40)", columns), [True, False, False, True]
        )

    def test_between(self, columns):
        np.testing.assert_array_equal(
            evaluate("T BETWEEN 20 AND 30", columns), [False, True, True, False]
        )

    def test_column_to_column(self, columns):
        np.testing.assert_array_equal(
            evaluate("A < B", columns), [True, True, False, False]
        )

    def test_boolean_literal(self, columns):
        assert evaluate("TRUE", columns) == np.True_

    def test_unknown_column(self, columns):
        with pytest.raises(QueryValidationError, match="unknown attribute"):
            evaluate("GHOST < 1", columns)


class TestBuiltinFunctions:
    def test_speed(self):
        out = speed(np.array([3.0]), np.array([4.0]), np.array([0.0]))
        np.testing.assert_allclose(out, [5.0])

    def test_distance(self):
        out = distance(np.array([1.0]), np.array([2.0]), np.array([2.0]))
        np.testing.assert_allclose(out, [3.0])

    def test_distance_any_arity(self):
        np.testing.assert_allclose(distance(np.array([5.0])), [5.0])

    def test_distance_no_args(self):
        with pytest.raises(QueryValidationError):
            distance()

    def test_speed_in_predicate(self, ):
        cols = {
            "VX": np.array([3.0, 30.0]),
            "VY": np.array([4.0, 40.0]),
            "VZ": np.array([0.0, 0.0]),
        }
        np.testing.assert_array_equal(
            evaluate("SPEED(VX, VY, VZ) < 30", cols), [True, False]
        )


class TestRegistry:
    def test_case_insensitive(self):
        assert "speed" in DEFAULT_REGISTRY
        assert "SPEED" in DEFAULT_REGISTRY

    def test_unknown_function(self):
        with pytest.raises(QueryValidationError, match="not registered"):
            DEFAULT_REGISTRY.get("NOPE")

    def test_register_custom(self):
        registry = FunctionRegistry()
        registry.register("DOUBLE", lambda x: x * 2)
        cols = {"A": np.array([1.0, 5.0])}
        out = evaluate("DOUBLE(A) > 4", cols, registry)
        np.testing.assert_array_equal(out, [False, True])

    def test_child_registry_layers(self):
        child = DEFAULT_REGISTRY.child()
        child.register("EXTRA", lambda x: x)
        assert "EXTRA" in child
        assert "SPEED" in child  # inherited
        assert "EXTRA" not in DEFAULT_REGISTRY

    def test_child_overrides(self):
        child = DEFAULT_REGISTRY.child()
        child.register("SPEED", lambda *a: np.zeros_like(a[0]))
        cols = {"V": np.array([100.0])}
        out = evaluate("SPEED(V, V, V) < 1", cols, child)
        assert out.all()

    def test_decorator(self):
        registry = FunctionRegistry()

        @filter_function("TRIPLE", registry)
        def triple(x):
            return x * 3

        assert registry.get("triple")(2) == 6

    def test_invalid_name(self):
        registry = FunctionRegistry()
        with pytest.raises(QueryValidationError, match="invalid"):
            registry.register("BAD NAME", lambda x: x)

    def test_names_listing(self):
        registry = FunctionRegistry(parent=DEFAULT_REGISTRY)
        registry.register("LOCAL", lambda x: x)
        names = set(registry.names())
        assert {"LOCAL", "SPEED", "DISTANCE"} <= names
