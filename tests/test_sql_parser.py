"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.sql import (
    And,
    Between,
    BoolLiteral,
    Column,
    Comparison,
    FunctionCall,
    InList,
    Literal,
    Not,
    Or,
    parse_query,
    parse_where,
    tokenize,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select From WHERE and OR not")]
        assert kinds == ["keyword"] * 6 + ["end"]

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e3 2.5e-2 -7")
        values = [t.value for t in tokens[:-1]]
        assert values == [42, 3.14, 1000.0, 0.025, -7]
        assert isinstance(values[0], int)
        assert isinstance(values[1], float)

    def test_operators(self):
        ops = [t.value for t in tokenize("< <= > >= = == != <>")[:-1]]
        assert ops == ["<", "<=", ">", ">=", "=", "==", "!=", "<>"]

    def test_strings(self):
        tokens = tokenize("'abc' \"xy\"")
        assert [t.value for t in tokens[:-1]] == ["abc", "xy"]

    def test_comments(self):
        tokens = tokenize("SELECT -- a comment\n *")
        assert [t.kind for t in tokens] == ["keyword", "punct", "end"]

    def test_positions(self):
        tokens = tokenize("SELECT\n  X")
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_bad_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("SELECT @")

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError, match="unterminated"):
            tokenize("'oops")


class TestParseQuery:
    def test_select_star(self):
        q = parse_query("SELECT * FROM IPARS")
        assert q.table == "IPARS"
        assert q.is_select_star
        assert q.where is None

    def test_projection(self):
        q = parse_query("SELECT X, Y, SOIL FROM IparsData")
        assert q.select == ["X", "Y", "SOIL"]

    def test_paper_figure1_query(self):
        q = parse_query(
            "SELECT * FROM IparsData WHERE RID in (0,6,26,27) AND "
            "TIME >= 1000 AND TIME <= 1100 AND SOIL >= 0.7 AND "
            "SPEED(OILVX, OILVY, OILVZ) <= 30.0;"
        )
        assert isinstance(q.where, And)
        assert len(q.where.terms) == 5
        in_term = q.where.terms[0]
        assert isinstance(in_term, InList)
        assert in_term.values == (0, 6, 26, 27)
        speed = q.where.terms[4]
        assert isinstance(speed, Comparison)
        assert isinstance(speed.left, FunctionCall)
        assert speed.left.name == "SPEED"

    def test_paper_figure7_queries(self):
        for text in [
            "SELECT * FROM TITAN",
            "SELECT * FROM TITAN WHERE X>=0 AND Y<=10000 AND Y>=0 AND "
            "Y<=10000 AND Z>=0 AND Z<=100",
            "SELECT * FROM TITAN WHERE DISTANCE(X, Y, Z)<1000",
            "SELECT * FROM TITAN WHERE S1 < 0.01",
        ]:
            q = parse_query(text)
            assert q.table == "TITAN"

    def test_or_precedence(self):
        q = parse_where("A < 1 OR B < 2 AND C < 3")
        assert isinstance(q, Or)
        assert isinstance(q.terms[1], And)

    def test_parentheses(self):
        q = parse_where("(A < 1 OR B < 2) AND C < 3")
        assert isinstance(q, And)
        assert isinstance(q.terms[0], Or)

    def test_not(self):
        q = parse_where("NOT A < 1")
        assert isinstance(q, Not)

    def test_not_in(self):
        q = parse_where("A NOT IN (1, 2)")
        assert isinstance(q, Not)
        assert isinstance(q.term, InList)

    def test_between(self):
        q = parse_where("T BETWEEN 10 AND 20")
        assert isinstance(q, Between)
        assert (q.lo, q.hi) == (10, 20)

    def test_not_between(self):
        q = parse_where("T NOT BETWEEN 10 AND 20")
        assert isinstance(q, Not)

    def test_between_binds_tighter_than_and(self):
        q = parse_where("T BETWEEN 10 AND 20 AND X < 5")
        assert isinstance(q, And)
        assert isinstance(q.terms[0], Between)

    def test_literal_on_left(self):
        q = parse_where("100 <= TIME")
        assert isinstance(q, Comparison)
        assert isinstance(q.left, Literal)

    def test_boolean_literals(self):
        assert isinstance(parse_where("TRUE"), BoolLiteral)
        assert parse_where("FALSE").value is False

    def test_nested_function_args(self):
        q = parse_where("F(G(X), 2, Y) < 1")
        f = q.left
        assert isinstance(f.args[0], FunctionCall)
        assert isinstance(f.args[1], Literal)
        assert isinstance(f.args[2], Column)

    def test_zero_arg_function(self):
        q = parse_where("Speed() < 30")
        assert isinstance(q.left, FunctionCall)
        assert q.left.args == ()

    def test_semicolon_optional(self):
        parse_query("SELECT * FROM T;")
        parse_query("SELECT * FROM T")

    def test_str_roundtrip(self):
        text = ("SELECT X, Y FROM T WHERE A IN (1, 2) AND B BETWEEN 0 AND 5 "
                "OR NOT (C < 3)")
        q1 = parse_query(text)
        q2 = parse_query(str(q1))
        assert str(q1) == str(q2)


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT * FORM T",
            "SELECT * FROM T WHERE",
            "SELECT * FROM T WHERE X",
            "SELECT * FROM T WHERE X <",
            "SELECT X Y FROM T",
            "SELECT * FROM T WHERE A IN 1",
            "SELECT * FROM T WHERE A BETWEEN 1",
            "SELECT * FROM T extra",
            "SELECT * FROM T WHERE A NOT < 3",
            "* FROM T",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)

    def test_error_carries_position(self):
        try:
            parse_query("SELECT *\nFROM T WHERE X <")
        except QuerySyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected syntax error")


class TestReferencedColumns:
    def test_dedup_and_order(self):
        q = parse_query(
            "SELECT X FROM T WHERE A < 1 AND F(B, A) < 2 AND C IN (1)"
        )
        assert q.referenced_columns() == ("A", "B", "C")

    def test_no_where(self):
        assert parse_query("SELECT * FROM T").referenced_columns() == ()
