"""Unit + property tests for the interval algebra and range extraction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import DEFAULT_REGISTRY, parse_where
from repro.sql.ranges import (
    Interval,
    IntervalSet,
    extract_ranges,
    query_is_unsatisfiable,
)


class TestInterval:
    def test_contains_closed(self):
        iv = Interval(1, 5)
        assert iv.contains(1) and iv.contains(5) and iv.contains(3)
        assert not iv.contains(0.999) and not iv.contains(5.001)

    def test_contains_open(self):
        iv = Interval(1, 5, lo_open=True, hi_open=True)
        assert not iv.contains(1) and not iv.contains(5)
        assert iv.contains(1.001)

    def test_empty(self):
        assert Interval(5, 1).is_empty()
        assert Interval(2, 2, lo_open=True).is_empty()
        assert not Interval(2, 2).is_empty()

    def test_intersect(self):
        a, b = Interval(0, 10), Interval(5, 15)
        c = a.intersect(b)
        assert (c.lo, c.hi) == (5, 10)

    def test_intersect_open_endpoints(self):
        a = Interval(0, 5, hi_open=True)
        b = Interval(5, 10)
        assert a.intersect(b).is_empty()

    def test_from_comparison(self):
        assert Interval.from_comparison("<", 3).contains(2.9)
        assert not Interval.from_comparison("<", 3).contains(3)
        assert Interval.from_comparison(">=", 3).contains(3)
        assert Interval.from_comparison("=", 3).contains(3)

    def test_hull(self):
        h = Interval(0, 2).hull(Interval(5, 8))
        assert (h.lo, h.hi) == (0, 8)


class TestIntervalSet:
    def test_normalisation_merges_overlaps(self):
        s = IntervalSet([Interval(0, 5), Interval(3, 8)])
        assert len(s.intervals) == 1
        assert s.intervals[0].hi == 8

    def test_normalisation_merges_adjacent(self):
        s = IntervalSet([Interval(0, 5, hi_open=True), Interval(5, 8)])
        assert len(s.intervals) == 1

    def test_keeps_disjoint(self):
        s = IntervalSet([Interval(0, 1), Interval(3, 4)])
        assert len(s.intervals) == 2

    def test_open_adjacency_stays_disjoint(self):
        s = IntervalSet(
            [Interval(0, 5, hi_open=True), Interval(5, 8, lo_open=True)]
        )
        assert len(s.intervals) == 2
        assert not s.contains(5)

    def test_points(self):
        s = IntervalSet.points([0, 6, 26, 27])
        assert s.contains(26) and not s.contains(13)

    def test_full_and_empty(self):
        assert IntervalSet.full().is_full()
        assert IntervalSet.empty().is_empty()
        assert IntervalSet.full().contains(1e18)

    def test_intersect_union(self):
        a = IntervalSet.of(0, 10)
        b = IntervalSet.of(5, 15)
        assert a.intersect(b).bounds == (5, 10)
        assert a.union(b).bounds == (0, 15)

    def test_intersect_with_full(self):
        a = IntervalSet.of(0, 10)
        assert a.intersect(IntervalSet.full()) == a

    def test_overlaps_range(self):
        s = IntervalSet.of(10, 20)
        assert s.overlaps_range(0, 10)
        assert s.overlaps_range(15, 16)
        assert not s.overlaps_range(21, 30)


class TestExtractRanges:
    def test_simple_comparisons(self):
        r = extract_ranges(parse_where("TIME >= 1000 AND TIME <= 1100"))
        assert r["TIME"].bounds == (1000, 1100)

    def test_strict_bounds_are_open(self):
        r = extract_ranges(parse_where("TIME > 1000 AND TIME < 1100"))
        assert not r["TIME"].contains(1000)
        assert not r["TIME"].contains(1100)
        assert r["TIME"].contains(1001)

    def test_in_list(self):
        r = extract_ranges(parse_where("REL IN (0, 6, 26)"))
        assert r["REL"].contains(6)
        assert not r["REL"].contains(3)

    def test_between(self):
        r = extract_ranges(parse_where("T BETWEEN 5 AND 9"))
        assert r["T"].bounds == (5, 9)

    def test_mirrored_comparison(self):
        r = extract_ranges(parse_where("100 <= TIME"))
        assert r["TIME"].contains(100)
        assert not r["TIME"].contains(99)

    def test_or_unions(self):
        r = extract_ranges(parse_where("T < 5 OR T > 10"))
        assert r["T"].contains(0) and r["T"].contains(11)
        assert not r["T"].contains(7)

    def test_or_drops_unshared_attrs(self):
        r = extract_ranges(parse_where("T < 5 OR X > 2"))
        assert "T" not in r and "X" not in r

    def test_and_intersects(self):
        r = extract_ranges(parse_where("(T < 5 OR T > 10) AND T >= 3"))
        assert not r["T"].contains(2)
        assert r["T"].contains(3) and r["T"].contains(11)

    def test_not_pushed_through(self):
        r = extract_ranges(parse_where("NOT T < 5"))
        assert r["T"].contains(5)
        assert not r["T"].contains(4.9)

    def test_not_between(self):
        r = extract_ranges(parse_where("T NOT BETWEEN 5 AND 9"))
        assert r["T"].contains(4) and r["T"].contains(10)
        assert not r["T"].contains(7)

    def test_demorgan(self):
        r = extract_ranges(parse_where("NOT (T < 5 OR T > 10)"))
        assert r["T"].bounds == (5, 10)

    def test_not_in_is_conservative(self):
        # NOT IN excludes points; we conservatively keep the attr
        # unconstrained (full predicate still filters rows).
        r = extract_ranges(parse_where("T NOT IN (1, 2)"))
        assert "T" not in r

    def test_inequality(self):
        r = extract_ranges(parse_where("T != 5"))
        assert not r["T"].contains(5)
        assert r["T"].contains(4) and r["T"].contains(6)

    def test_function_calls_unconstrained(self):
        r = extract_ranges(parse_where("SPEED(A, B, C) < 30"))
        assert r == {}

    def test_column_to_column_unconstrained(self):
        assert extract_ranges(parse_where("A < B")) == {}

    def test_none(self):
        assert extract_ranges(None) == {}

    def test_contradiction_detected(self):
        r = extract_ranges(parse_where("T < 5 AND T > 10"))
        assert query_is_unsatisfiable(r)

    def test_false_literal(self):
        r = extract_ranges(parse_where("FALSE"))
        assert query_is_unsatisfiable(r)

    def test_double_negation(self):
        r = extract_ranges(parse_where("NOT (NOT T > 5)"))
        assert r["T"].contains(6)
        assert not r["T"].contains(5)

    def test_not_between_leaves_gap_uncovered(self):
        # The complement of [5, 9] is two open rays; the extracted set
        # must cover both rays and may not cover the gap.
        r = extract_ranges(parse_where("T NOT BETWEEN 5 AND 9"))
        assert r["T"].contains(-1e9) and r["T"].contains(1e9)
        assert not r["T"].contains(5) and not r["T"].contains(9)

    def test_not_over_in_over_approximates(self):
        # Excluded points are a measure-zero restriction: dropping the
        # attr entirely (full range) is a sound over-approximation.
        r = extract_ranges(parse_where("T NOT IN (1, 2) AND T > 0"))
        # The conjunct T > 0 must survive even though NOT IN is dropped.
        assert not r["T"].contains(0)
        assert r["T"].contains(1)  # over-approximation keeps excluded point

    def test_not_over_or_with_unconstrained_branch(self):
        # NOT (T < 5 OR SPEED(..) > 3) == T >= 5 AND NOT SPEED(..) > 3.
        # The function branch is unconstrainable; the T bound must be kept.
        r = extract_ranges(parse_where("NOT (T < 5 OR SPEED(A, B, C) > 3)"))
        assert r["T"].contains(5)
        assert not r["T"].contains(4.9)

    def test_not_over_and_with_unconstrained_branch(self):
        # NOT (T < 5 AND SPEED(..) > 3) == T >= 5 OR NOT SPEED(..) > 3.
        # The OR's function branch admits any T, so T must be unconstrained.
        r = extract_ranges(parse_where("NOT (T < 5 AND SPEED(A, B, C) > 3)"))
        assert "T" not in r or r["T"].contains(4)

    def test_not_never_tightens_beyond_complement(self):
        # Over-approximation safety: every value satisfying the original
        # predicate lies inside the extracted range.
        node = parse_where("NOT (A BETWEEN 2 AND 4 OR A IN (7, 8))")
        r = extract_ranges(node)
        for probe in (-3.0, 0.0, 1.9, 4.1, 6.0, 9.0, 100.0):
            sat = bool(
                np.asarray(
                    node.evaluate({"A": np.array([probe])}, DEFAULT_REGISTRY)
                ).all()
            )
            if sat and "A" in r:
                assert r["A"].contains(probe), probe

    def test_paper_figure1_ranges(self):
        r = extract_ranges(parse_where(
            "RID in (0,6,26,27) AND TIME >= 1000 AND TIME <= 1100 AND "
            "SOIL >= 0.7 AND SPEED(OILVX, OILVY, OILVZ) <= 30.0"
        ))
        assert set(r) == {"RID", "TIME", "SOIL"}
        assert r["SOIL"].bounds[0] == 0.7


# ---------------------------------------------------------------------------
# Property tests: extracted ranges are NECESSARY conditions
# ---------------------------------------------------------------------------

_attrs = ("A", "B")


@st.composite
def predicates(draw, depth=0):
    if depth >= 3 or draw(st.integers(0, 2)) == 0:
        attr = draw(st.sampled_from(_attrs))
        kind = draw(st.integers(0, 3))
        value = draw(st.integers(-10, 10))
        if kind == 0:
            op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
            return f"{attr} {op} {value}"
        if kind == 1:
            hi = value + draw(st.integers(0, 10))
            return f"{attr} BETWEEN {value} AND {hi}"
        if kind == 2:
            values = draw(st.lists(st.integers(-10, 10), min_size=1, max_size=4))
            return f"{attr} IN ({', '.join(map(str, values))})"
        return f"NOT ({draw(predicates(depth + 1))})"
    op = draw(st.sampled_from(["AND", "OR"]))
    return f"({draw(predicates(depth + 1))}) {op} ({draw(predicates(depth + 1))})"


@given(
    predicates(),
    st.integers(-12, 12),
    st.integers(-12, 12),
)
@settings(max_examples=300, deadline=None)
def test_ranges_are_necessary_conditions(text, a, b):
    """Any row satisfying the predicate lies within the extracted ranges.

    This is THE safety property of chunk pruning: pruning by ranges can
    only remove rows the full predicate would reject anyway.
    """
    node = parse_where(text)
    columns = {"A": np.array([a]), "B": np.array([b])}
    satisfied = bool(np.asarray(node.evaluate(columns, DEFAULT_REGISTRY)).all())
    ranges = extract_ranges(node)
    if satisfied:
        for attr, value in (("A", a), ("B", b)):
            if attr in ranges:
                assert ranges[attr].contains(value), (
                    f"{text}: row ({a}, {b}) satisfies predicate but "
                    f"{attr}={value} outside {ranges[attr]}"
                )


@given(st.lists(st.tuples(st.integers(-20, 20), st.integers(0, 10)), max_size=6),
       st.integers(-25, 25))
@settings(max_examples=200, deadline=None)
def test_interval_set_union_contains_members(pairs, probe):
    sets = [IntervalSet.of(lo, lo + width) for lo, width in pairs]
    union = IntervalSet.empty()
    for s in sets:
        union = union.union(s)
    assert union.contains(probe) == any(s.contains(probe) for s in sets)


@given(st.tuples(st.integers(-20, 20), st.integers(0, 10)),
       st.tuples(st.integers(-20, 20), st.integers(0, 10)),
       st.integers(-25, 25))
@settings(max_examples=200, deadline=None)
def test_interval_set_intersection(a, b, probe):
    sa = IntervalSet.of(a[0], a[0] + a[1])
    sb = IntervalSet.of(b[0], b[0] + b[1])
    both = sa.intersect(sb)
    assert both.contains(probe) == (sa.contains(probe) and sb.contains(probe))
