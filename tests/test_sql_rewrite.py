"""Unit tests for the equivalence-preserving rewrite pass (repro.sql.rewrite)."""

from __future__ import annotations

import pytest

from repro.sql.ast import (
    And,
    BoolLiteral,
    Column,
    Comparison,
    InList,
    Literal,
    Not,
    Or,
)
from repro.sql.parser import parse_query, parse_where
from repro.sql.rewrite import RewriteStep, rewrite_query, rewrite_where


def rw(text):
    node, steps = rewrite_where(parse_where(text))
    return node, steps


def canon(text):
    node, _ = rw(text)
    return None if node is None else str(node)


def codes(steps):
    return {s.code for s in steps}


class TestConstantFolding:
    def test_numeric_comparison_folds(self):
        assert canon("3 < 5 AND A > 2") == "A > 2"
        node, steps = rw("3 < 5 AND A > 2")
        assert "RW400" in codes(steps)

    def test_false_constant_short_circuits_and(self):
        assert canon("3 > 5 AND A > 2") == "FALSE"

    def test_string_comparison_folds(self):
        assert canon("'a' < 'b' AND A > 2") == "A > 2"

    def test_mixed_type_constant_not_folded(self):
        # string-vs-number comparison is a type error, not a constant;
        # left for the typechecker to report.
        node, steps = rw("'a' < 3")
        assert "RW400" not in codes(steps)

    def test_literal_membership_folds(self):
        assert canon("5 IN (1, 2) OR A > 2") == "A > 2"
        assert canon("2 IN (1, 2) OR A > 2") is None  # TRUE: clause dropped

    def test_where_reduced_to_true_drops_clause(self):
        node, steps = rw("1 = 1")
        assert node is None
        assert "RW407" in codes(steps)


class TestComparisonCanonicalization:
    def test_literal_left_is_mirrored(self):
        assert canon("10 > A") == "A < 10"
        assert canon("10 = A") == "A = 10"

    def test_operator_spellings_normalize(self):
        assert canon("A == 3") == "A = 3"
        assert canon("A <> 3") == "A != 3"

    def test_column_pair_ordered_lexicographically(self):
        assert canon("SOIL > SGAS") == "SGAS < SOIL"
        assert canon("SGAS < SOIL") == "SGAS < SOIL"


class TestNotPushdown:
    def test_comparison_stays_wrapped(self):
        # NOT (A > 2) is True on a NaN row (mask complement of False);
        # A <= 2 is False there — flipping the operator is unsound.
        assert canon("NOT A > 2") == "NOT (A > 2)"

    def test_double_negation(self):
        assert canon("NOT NOT A > 2") == "A > 2"

    def test_not_bool_literal_flips(self):
        assert canon("NOT TRUE AND A > 2") == "FALSE"
        assert canon("NOT FALSE AND A > 2") == "A > 2"

    def test_de_morgan_and(self):
        assert canon("NOT (A > 1 AND B < 2)") == "NOT (A > 1) OR NOT (B < 2)"

    def test_de_morgan_or(self):
        assert canon("NOT (A > 1 OR B < 2)") == "NOT (A > 1) AND NOT (B < 2)"

    def test_de_morgan_enables_duplicate_elimination(self):
        assert canon("NOT (A > 1 OR A > 1)") == "NOT (A > 1)"

    def test_not_in_stays(self):
        assert canon("NOT A IN (1, 2)") == "NOT (A IN (1, 2))"


class TestBetweenAndIn:
    def test_between_expands(self):
        node, steps = rw("A BETWEEN 1 AND 5")
        assert str(node) == "A <= 5 AND A >= 1"
        assert "RW403" in codes(steps)

    def test_inverted_between_is_false(self):
        assert canon("A BETWEEN 5 AND 1") == "FALSE"

    def test_degenerate_between_is_equality(self):
        assert canon("A BETWEEN 3 AND 3") == "A = 3"

    def test_in_list_sorted_and_deduplicated(self):
        assert canon("A IN (5, 1, 5)") == "A IN (1, 5)"

    def test_singleton_in_becomes_equality(self):
        assert canon("A IN (7)") == "A = 7"

    def test_empty_in_is_false(self):
        node, steps = rewrite_where(InList(Column("A"), ()))
        assert node == BoolLiteral(False)


class TestConjunctAlgebra:
    def test_duplicate_conjunct_dropped(self):
        assert canon("A > 2 AND A > 2") == "A > 2"

    def test_subsumed_bound_merged(self):
        assert canon("A > 1 AND A > 3") == "A > 3"

    def test_closed_interval_collapses_to_point(self):
        assert canon("A >= 2 AND A <= 2") == "A = 2"

    def test_in_lists_intersect(self):
        assert canon("A IN (1, 2, 3) AND A IN (2, 3, 4)") == "A IN (2, 3)"

    def test_contradictory_bounds_fold_to_false(self):
        node, steps = rw("A > 1 AND A < 0")
        assert str(node) == "FALSE"
        assert "RW408" in codes(steps)

    def test_equalities_on_one_attribute_contradict(self):
        assert canon("A = 1 AND A = 2") == "FALSE"

    def test_function_operands_merge_by_rendered_key(self):
        text = "SPEED(X, Y, Z) > 1 AND SPEED(X, Y, Z) <= 1"
        assert canon(text) == "FALSE"

    def test_conjunct_order_canonicalized(self):
        assert canon("B < 2 AND A > 1") == canon("A > 1 AND B < 2")

    def test_nested_and_flattens(self):
        assert canon("A > 1 AND (B < 2 AND C = 3)") == "A > 1 AND B < 2 AND C = 3"


class TestDisjunctAlgebra:
    def test_duplicate_disjunct_dropped(self):
        assert canon("A > 1 OR A > 1") == "A > 1"

    def test_false_disjunct_dropped(self):
        assert canon("3 > 5 OR A > 1") == "A > 1"

    def test_true_disjunct_absorbs(self):
        assert canon("3 < 5 OR A > 1") is None

    def test_nested_or_flattens(self):
        assert canon("A > 1 OR (A > 1 OR B < 2)") == "A > 1 OR B < 2"

    def test_not_equal_conjuncts_never_interval_merged(self):
        # NaN != anything is True, so rendering "B != 5 AND B != 7" as an
        # OR of open ranges (False on NaN) would flip NaN rows.
        assert canon("B != 5 AND B != 7") == "B != 5 AND B != 7"
        assert canon("B != 5 AND B > 0") == "B != 5 AND B > 0"

    def test_nan_unsound_union_not_folded(self):
        # (-inf, 5) u [5, inf) covers every number, but a NaN row fails
        # both disjuncts — folding to TRUE would change results on float
        # columns, so the rewriter must keep the OR.
        assert canon("A < 5 OR A >= 5") == "A < 5 OR A >= 5"


class TestFixpointAndApi:
    CASES = [
        "10 > A",
        "A > 1 AND A > 3",
        "A BETWEEN 1 AND 5",
        "NOT (A > 1 AND B < 2)",
        "A IN (5, 1, 5)",
        "TRUE AND A > 2",
        "SOIL > SGAS",
        "A IN (1, 2, 3) AND A IN (2, 3, 4)",
        "A > 1 OR (A > 1 OR B < 2)",
        "A <> 3 AND A != 3",
        "A < 5 OR A >= 5",
        "NOT A IN (1, 2)",
        "SPEED(X, Y, Z) <= 30.0 AND TIME > 2",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_rewrite_is_idempotent(self, text):
        node, _ = rw(text)
        again, steps = rewrite_where(node)
        assert again == node
        assert steps == []

    def test_canonical_query_returned_unchanged(self):
        query = parse_query("SELECT X FROM T WHERE A > 2 AND B < 3")
        result, steps = rewrite_query(query)
        assert result is query
        assert steps == []

    def test_rewrite_query_preserves_select_and_grouping(self):
        query = parse_query(
            "SELECT TIME, COUNT(*) FROM T WHERE 10 > A GROUP BY TIME"
        )
        result, steps = rewrite_query(query)
        assert str(result.where) == "A < 10"
        assert result.select == query.select
        assert result.group_by == ["TIME"]
        assert steps

    def test_none_where_passes_through(self):
        assert rewrite_where(None) == (None, [])

    def test_steps_are_coded_and_rendered(self):
        _, steps = rw("10 > A AND TRUE")
        assert steps
        for step in steps:
            assert isinstance(step, RewriteStep)
            assert step.code.startswith("RW4")
            assert str(step).startswith(f"[{step.code}]")

    def test_canonical_form_collapses_spellings(self):
        spellings = [
            "TIME > 2 AND SOIL > 0.1",
            "SOIL > 0.1 AND 2 < TIME",
            "TIME > 2 AND (SOIL > 0.1 AND 1 = 1)",
            "SOIL > 0.1 AND TIME > 2 AND TIME > 2",
        ]
        forms = {canon(s) for s in spellings}
        assert forms == {"SOIL > 0.1 AND TIME > 2"}

    def test_rebuilt_trees_are_well_formed_ast(self):
        node, _ = rw("NOT (A > 1 AND (B < 2 OR B > 5)) AND C IN (3, 1)")
        assert isinstance(node, (And, Or, Not, Comparison, InList, Literal))
        # and they round-trip through the parser
        assert parse_where(str(node)) == node
