"""``str(Query)`` -> ``parse_query`` round-trip regression tests.

The rewrite pass and the plan/cache layers re-render AST nodes to query
text (span recovery, cache keys, explain output), so rendering must be a
bit-identical inverse of parsing over the whole AST surface:

    parse(str(node)) == node          (structural round trip)
    str(parse(str(node))) == str(node)  (textual fixpoint)
"""

from __future__ import annotations

import random

import pytest

from repro.sql.ast import (
    Aggregate,
    And,
    Between,
    BoolLiteral,
    Column,
    Comparison,
    FunctionCall,
    InList,
    Literal,
    Not,
    Or,
    Query,
)
from repro.sql.parser import parse_query, parse_where

# ---------------------------------------------------------------------------
# Seeded random AST generator (whole node surface)
# ---------------------------------------------------------------------------

NAMES = ["A", "B", "C", "TIME", "SOIL", "OILVX"]
FUNCS = ["SPEED", "DISTANCE", "F1"]
OPS = ["=", "==", "!=", "<>", "<", "<=", ">", ">="]
STRINGS = ["a", "bc", "x_1", "osu0"]


def rand_number(rng: random.Random):
    kind = rng.randrange(4)
    if kind == 0:
        return rng.randint(-50, 100)
    if kind == 1:
        return round(rng.uniform(-10.0, 10.0), 3)
    if kind == 2:
        return float(rng.randint(0, 9)) * 10.0 ** rng.randint(-8, 8)
    return rng.randint(0, 5)


def rand_value(rng: random.Random):
    if rng.random() < 0.25:
        return rng.choice(STRINGS)
    return rand_number(rng)


def rand_operand(rng: random.Random, depth: int):
    roll = rng.random()
    if roll < 0.5:
        return Column(rng.choice(NAMES))
    if roll < 0.8 or depth <= 0:
        return Literal(rand_value(rng))
    nargs = rng.randrange(0, 4)
    args = tuple(rand_operand(rng, depth - 1) for _ in range(nargs))
    return FunctionCall(rng.choice(FUNCS), args)


def rand_predicate(rng: random.Random, depth: int):
    atoms = ("cmp", "in", "between", "bool")
    compound = ("and", "or", "not")
    kind = rng.choice(atoms if depth <= 0 else atoms + compound * 2)
    if kind == "cmp":
        return Comparison(
            rng.choice(OPS), rand_operand(rng, depth), rand_operand(rng, depth)
        )
    if kind == "in":
        values = tuple(rand_value(rng) for _ in range(rng.randrange(1, 4)))
        return InList(rand_operand(rng, depth), values)
    if kind == "between":
        return Between(rand_operand(rng, depth), rand_value(rng), rand_value(rng))
    if kind == "bool":
        return BoolLiteral(rng.random() < 0.5)
    if kind == "not":
        return Not(rand_predicate(rng, depth - 1))
    terms = tuple(
        rand_predicate(rng, depth - 1) for _ in range(rng.randrange(2, 4))
    )
    return And(terms) if kind == "and" else Or(terms)


def rand_select(rng: random.Random):
    if rng.random() < 0.2:
        return None  # SELECT *
    items = []
    for _ in range(rng.randrange(1, 4)):
        if rng.random() < 0.4:
            func = rng.choice(["count", "sum", "min", "max", "avg"])
            if func == "count" and rng.random() < 0.5:
                items.append(Aggregate("count", None))
            else:
                items.append(Aggregate(func, rng.choice(NAMES)))
        else:
            items.append(rng.choice(NAMES))
    return items


def rand_query(rng: random.Random):
    select = rand_select(rng)
    where = rand_predicate(rng, rng.randrange(0, 4)) if rng.random() < 0.8 else None
    group_by = None
    if rng.random() < 0.3:
        group_by = sorted(set(rng.choice(NAMES) for _ in range(rng.randrange(1, 3))))
    return Query(table="T", select=select, where=where, group_by=group_by)


class TestRandomizedRoundTrip:
    def test_500_random_queries_round_trip(self):
        rng = random.Random(20260808)
        for i in range(500):
            query = rand_query(rng)
            text = str(query)
            reparsed = parse_query(text)
            assert reparsed == query, f"case {i}: {text!r}"
            assert str(reparsed) == text, f"case {i}: {text!r}"

    def test_500_random_predicates_round_trip(self):
        rng = random.Random(4242)
        for i in range(500):
            node = rand_predicate(rng, 4)
            text = str(node)
            reparsed = parse_where(text)
            assert reparsed == node, f"case {i}: {text!r}"
            assert str(reparsed) == text, f"case {i}: {text!r}"


# ---------------------------------------------------------------------------
# Explicit regressions (shapes that used to render ambiguously)
# ---------------------------------------------------------------------------


def roundtrip(node):
    text = str(node)
    reparsed = parse_where(text)
    assert reparsed == node, text
    assert str(reparsed) == text
    return text


class TestExplicitShapes:
    def test_nested_and_inside_and_keeps_parens(self):
        a = Comparison(">", Column("A"), Literal(1))
        b = Comparison("<", Column("B"), Literal(2))
        c = Comparison("=", Column("C"), Literal(3))
        node = And((a, And((b, c))))
        # without parens this would reparse flattened as And((a, b, c))
        assert roundtrip(node) == "A > 1 AND (B < 2 AND C = 3)"

    def test_nested_or_inside_or_keeps_parens(self):
        a = Comparison(">", Column("A"), Literal(1))
        b = Comparison("<", Column("B"), Literal(2))
        c = Comparison("=", Column("C"), Literal(3))
        node = Or((Or((a, b)), c))
        assert roundtrip(node) == "(A > 1 OR B < 2) OR C = 3"

    def test_or_inside_and_keeps_parens(self):
        a = Comparison(">", Column("A"), Literal(1))
        b = Comparison("<", Column("B"), Literal(2))
        node = And((Or((a, b)), a))
        assert roundtrip(node) == "(A > 1 OR B < 2) AND A > 1"

    def test_and_inside_or_needs_no_parens(self):
        a = Comparison(">", Column("A"), Literal(1))
        b = Comparison("<", Column("B"), Literal(2))
        node = Or((And((a, b)), a))
        assert roundtrip(node) == "A > 1 AND B < 2 OR A > 1"

    def test_string_values_in_in_list_are_quoted(self):
        node = InList(Column("DIR"), ("osu0", "osu1"))
        assert roundtrip(node) == "DIR IN ('osu0', 'osu1')"

    def test_string_values_in_between_are_quoted(self):
        node = Between(Column("DIR"), "osu0", "osu3")
        assert roundtrip(node) == "DIR BETWEEN 'osu0' AND 'osu3'"

    def test_mixed_value_in_list(self):
        node = InList(Column("A"), (1, "two", 3.5))
        assert roundtrip(node) == "A IN (1, 'two', 3.5)"

    def test_not_wraps_term_in_parens(self):
        node = Not(InList(Column("A"), (1, 2)))
        assert roundtrip(node) == "NOT (A IN (1, 2))"

    def test_operator_spellings_preserved(self):
        assert roundtrip(Comparison("==", Column("A"), Literal(3))) == "A == 3"
        assert roundtrip(Comparison("<>", Column("A"), Literal(3))) == "A <> 3"

    def test_negative_and_exponent_literals(self):
        assert roundtrip(Comparison("<", Column("A"), Literal(-3))) == "A < -3"
        assert roundtrip(Comparison("<", Column("A"), Literal(-2.5))) == "A < -2.5"
        text = roundtrip(Comparison("<", Column("A"), Literal(1.5e-05)))
        assert text == "A < 1.5e-05"

    def test_zero_arg_function_call(self):
        node = Comparison(">", FunctionCall("DISTANCE", ()), Literal(1))
        assert roundtrip(node) == "DISTANCE() > 1"

    def test_nested_function_call(self):
        inner = FunctionCall("F1", (Column("A"), Literal(2)))
        node = Comparison("<=", FunctionCall("SPEED", (inner, Column("B"))), Literal(9))
        assert roundtrip(node) == "SPEED(F1(A, 2), B) <= 9"

    def test_bool_literals(self):
        assert roundtrip(BoolLiteral(True)) == "TRUE"
        assert roundtrip(BoolLiteral(False)) == "FALSE"

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT * FROM T",
            "SELECT A, B FROM T WHERE A > 1",
            "SELECT COUNT(*) FROM T",
            "SELECT TIME, SUM(SOIL), AVG(SOIL) FROM T GROUP BY TIME",
            "SELECT MIN(A), MAX(A) FROM T WHERE B IN (1, 2) GROUP BY C",
        ],
    )
    def test_query_text_fixpoint(self, text):
        query = parse_query(text)
        assert str(query) == text
        assert parse_query(str(query)) == query
