"""Typed semantic analysis of queries (repro.sql.typecheck, RT3xx)."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.diag import Collector, Severity, analyze_query
from repro.errors import QueryValidationError
from repro.metadata import parse_descriptor
from repro.metadata.schema import Attribute, Schema
from repro.metadata.types import ScalarType
from repro.sql.ast import Aggregate, BoolLiteral, Column, Comparison, Query
from repro.sql.functions import (
    DEFAULT_REGISTRY,
    FunctionSignature,
    filter_function,
)
from repro.sql.parser import parse_query
from repro.sql.typecheck import (
    ExprType,
    aggregate_output_dtype,
    aggregate_state_dtypes,
    infer_type,
    sum_accumulator_dtype,
    typecheck_query,
)

# One attribute per declarable scalar type (every descriptor type is
# numeric; string-kind attributes are only constructible programmatically).
TYPED_DESCRIPTOR = """
[TYPED]
T = int
S = short int
C = char
L = long int
F = float
D = double

[TypedData]
DatasetDescription = TYPED
DIR[0] = n0

DATASET "TypedData" {
  DATATYPE { TYPED }
  DATAINDEX { T }
  DATASPACE {
    LOOP T 1:4:1 { S C L F D }
  }
  DATA { DIR[0]/CHUNK$PART PART = 0:1:1 }
}
"""


@pytest.fixture(scope="module")
def typed():
    return parse_descriptor(TYPED_DESCRIPTOR)


def check(descriptor, sql, functions=None):
    return analyze_query(descriptor, sql, functions=functions)


def rt_codes(collector):
    return [c for c in collector.codes() if c.startswith("RT")]


# ---------------------------------------------------------------------------
# Inference
# ---------------------------------------------------------------------------


class TestInference:
    def test_column_types_carry_declared_dtype(self, typed):
        for name, dtype in [
            ("T", "int32"), ("S", "int16"), ("C", "int8"),
            ("L", "int64"), ("F", "float32"), ("D", "float64"),
        ]:
            t = infer_type(Column(name), typed, DEFAULT_REGISTRY)
            assert t.kind == "numeric"
            assert t.dtype == np.dtype(dtype)

    def test_unknown_column_is_unknown(self, typed):
        assert infer_type(Column("NOPE"), typed, DEFAULT_REGISTRY).kind == "unknown"

    def test_literals(self, typed):
        from repro.sql.ast import Literal

        assert infer_type(Literal(3), typed, DEFAULT_REGISTRY).kind == "numeric"
        assert infer_type(Literal("x"), typed, DEFAULT_REGISTRY).kind == "string"
        assert infer_type(BoolLiteral(True), typed, DEFAULT_REGISTRY).kind == "bool"

    def test_registered_function_is_numeric(self, typed):
        from repro.sql.ast import FunctionCall

        node = FunctionCall("SPEED", (Column("F"), Column("F"), Column("D")))
        assert infer_type(node, typed, DEFAULT_REGISTRY) == ExprType("numeric")

    def test_unregistered_function_is_unknown(self, typed):
        from repro.sql.ast import FunctionCall

        node = FunctionCall("MYSTERY", ())
        assert infer_type(node, typed, DEFAULT_REGISTRY).kind == "unknown"


# ---------------------------------------------------------------------------
# RT301-RT303: incomparable operands
# ---------------------------------------------------------------------------


class TestIncomparable:
    def test_rt301_function_vs_string_literal(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE SPEED(F, F, D) = 'fast'")
        assert "RT301" in c.codes()
        assert c.has_errors

    def test_rt301_bool_vs_numeric_programmatic(self, typed):
        query = Query(
            table="TypedData",
            where=Comparison("=", BoolLiteral(True), Column("T")),
        )
        collector = Collector()
        typecheck_query(typed, query, DEFAULT_REGISTRY, collector)
        assert rt_codes(collector) == ["RT301"]

    def test_no_rt301_when_rq206_already_reports(self, typed):
        # numeric column vs string literal is RQ206's case; the
        # typechecker must not double-report it.
        c = check(typed, "SELECT * FROM TypedData WHERE T = 'abc'")
        assert "RQ206" in c.codes()
        assert "RT301" not in c.codes()

    def test_no_rt301_for_unknown_operands(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE NOPE = 'abc'")
        assert "RQ203" in c.codes()  # unknown attribute, reported once
        assert "RT301" not in c.codes()

    def test_rt302_string_argument_to_numeric_function(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE SPEED('a', F, D) < 3")
        assert "RT302" in c.codes()
        assert c.has_errors

    def test_rt303_in_list_value_mismatch(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE SPEED(F, F, D) IN ('a', 'b')")
        assert "RT303" in c.codes()

    def test_rt303_between_value_mismatch(self, typed):
        c = check(
            typed,
            "SELECT * FROM TypedData WHERE SPEED(F, F, D) BETWEEN 'a' AND 'b'",
        )
        assert "RT303" in c.codes()

    def test_no_rt303_when_rq206_covers_membership(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE T IN ('a', 'b')")
        assert "RQ206" in c.codes()
        assert "RT303" not in c.codes()


# ---------------------------------------------------------------------------
# RT304/RT305: aggregate typing
# ---------------------------------------------------------------------------


def string_schema_descriptor():
    """A descriptor-shaped object whose schema has a string attribute.

    No descriptor *type name* maps onto a string kind, so this shape is
    only reachable programmatically — the checker still has to reject it.
    """
    schema = Schema(
        "FAKE",
        [
            Attribute("NAME", ScalarType("char8", "S", 8)),
            Attribute("N", ScalarType("int", "i", 4)),
        ],
    )
    return SimpleNamespace(schema=schema)


class TestAggregateTyping:
    def test_rt304_sum_over_string_attribute(self):
        descriptor = string_schema_descriptor()
        query = Query(table="FAKE", select=[Aggregate("sum", "NAME")])
        collector = Collector()
        typecheck_query(descriptor, query, DEFAULT_REGISTRY, collector)
        assert rt_codes(collector) == ["RT304"]
        assert collector.has_errors

    def test_count_over_string_attribute_is_fine(self):
        descriptor = string_schema_descriptor()
        query = Query(table="FAKE", select=[Aggregate("count", "NAME")])
        collector = Collector()
        typecheck_query(descriptor, query, DEFAULT_REGISTRY, collector)
        assert rt_codes(collector) == []

    def test_rt305_sum_over_int64_warns(self, typed):
        c = check(typed, "SELECT SUM(L) FROM TypedData")
        assert "RT305" in c.codes()
        assert c.warnings and not c.has_errors

    def test_no_rt305_for_narrow_integers(self, typed):
        for col in ("T", "S", "C"):
            assert "RT305" not in check(
                typed, f"SELECT SUM({col}) FROM TypedData"
            ).codes()

    def test_no_rt305_for_floats(self, typed):
        assert "RT305" not in check(typed, "SELECT SUM(D) FROM TypedData").codes()


class TestDtypePolicy:
    def test_sum_accumulator(self):
        assert sum_accumulator_dtype(np.dtype(np.int16)) == np.dtype(np.int64)
        assert sum_accumulator_dtype(np.dtype(np.float32)) == np.dtype(np.float64)

    def test_output_dtypes(self):
        f32 = np.dtype(np.float32)
        assert aggregate_output_dtype("count", None) == np.dtype(np.int64)
        assert aggregate_output_dtype("avg", f32) == np.dtype(np.float64)
        assert aggregate_output_dtype("sum", f32) == np.dtype(np.float64)
        assert aggregate_output_dtype("min", f32) == f32

    def test_state_dtypes(self):
        f32 = np.dtype(np.float32)
        assert aggregate_state_dtypes("count", None) == (np.dtype(np.int64),)
        assert aggregate_state_dtypes("avg", f32) == (
            np.dtype(np.float64), np.dtype(np.int64),
        )
        assert aggregate_state_dtypes("max", f32) == (f32,)


# ---------------------------------------------------------------------------
# RT306/RT307: representability of literals
# ---------------------------------------------------------------------------


class TestRepresentability:
    def test_rt306_fractional_equality_against_integer(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE T = 2.5")
        assert "RT306" in c.codes()
        assert "never match" in [d.message for d in c if d.code == "RT306"][0]

    def test_rt306_fractional_inequality_always_matches(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE T != 2.5")
        assert "always match" in [d.message for d in c if d.code == "RT306"][0]

    def test_no_rt306_for_ordered_fractional_bound(self, typed):
        # T > 2.5 is a perfectly good half-open bound on an integer.
        assert "RT306" not in check(
            typed, "SELECT * FROM TypedData WHERE T > 2.5"
        ).codes()

    def test_rt306_float32_equality_with_unrepresentable_literal(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE F = 0.1")
        assert "RT306" in c.codes()

    def test_no_rt306_for_representable_float32(self, typed):
        assert "RT306" not in check(
            typed, "SELECT * FROM TypedData WHERE F = 0.5"
        ).codes()

    def test_no_rt306_for_double(self, typed):
        assert "RT306" not in check(
            typed, "SELECT * FROM TypedData WHERE D = 0.1"
        ).codes()

    def test_rt306_applies_to_mirrored_literal_left(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE 2.5 = T")
        assert "RT306" in c.codes()

    def test_rt307_bound_above_short_range(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE S > 40000")
        assert "RT307" in c.codes()
        assert "always false" in [d.message for d in c if d.code == "RT307"][0]

    def test_rt307_bound_below_char_range(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE C >= -200")
        assert "RT307" in c.codes()
        assert "always true" in [d.message for d in c if d.code == "RT307"][0]

    def test_rt307_in_list_value_out_of_range(self, typed):
        c = check(typed, "SELECT * FROM TypedData WHERE C IN (1, 300)")
        assert "RT307" in c.codes()

    def test_no_rt307_inside_range(self, typed):
        assert "RT307" not in check(
            typed, "SELECT * FROM TypedData WHERE S > 30000"
        ).codes()


# ---------------------------------------------------------------------------
# RT308 + function signatures (variadic arity satellite)
# ---------------------------------------------------------------------------


class TestSignatures:
    def test_builtin_signatures_declared(self):
        assert DEFAULT_REGISTRY.arity("SPEED") == (3, 3)
        assert DEFAULT_REGISTRY.arity("DISTANCE") == (1, None)
        sig = DEFAULT_REGISTRY.signature("DISTANCE")
        assert sig == FunctionSignature(1, None)

    def test_variadic_zero_args_is_an_arity_error(self, typed):
        # regression: DISTANCE(*coords) introspects as (0, None), so the
        # analyzer used to accept DISTANCE() and fail at runtime.
        c = check(typed, "SELECT * FROM TypedData WHERE DISTANCE() > 1")
        assert "RQ205" in c.codes()

    @pytest.mark.parametrize("args", ["F", "F, D", "F, D, T"])
    def test_variadic_accepts_one_or_more(self, typed, args):
        c = check(typed, f"SELECT * FROM TypedData WHERE DISTANCE({args}) > 1")
        assert "RQ205" not in c.codes()

    def test_rt308_unsigned_function_reported_once(self, typed):
        registry = DEFAULT_REGISTRY.child()
        registry.register("CUBE", lambda x: x**3)
        c = check(
            typed,
            "SELECT * FROM TypedData WHERE CUBE(F) > 1 AND CUBE(D) < 9",
            functions=registry,
        )
        assert [d.code for d in c if d.code == "RT308"] == ["RT308"]
        assert c.by_severity(Severity.INFO)

    def test_no_rt308_with_declared_signature(self, typed):
        registry = DEFAULT_REGISTRY.child()

        @filter_function("CUBE", registry=registry, signature=FunctionSignature(1, 1))
        def cube(x):
            return x**3

        c = check(
            typed, "SELECT * FROM TypedData WHERE CUBE(F) > 1", functions=registry
        )
        assert "RT308" not in c.codes()

    def test_child_override_hides_parent_signature(self):
        registry = DEFAULT_REGISTRY.child()
        registry.register("SPEED", lambda a, b: a + b)  # no signature
        assert registry.signature("SPEED") is None
        assert registry.arity("SPEED") == (2, 2)  # introspection fallback
        # the parent is untouched
        assert DEFAULT_REGISTRY.arity("SPEED") == (3, 3)


# ---------------------------------------------------------------------------
# Spans and strict mode
# ---------------------------------------------------------------------------


class TestIntegration:
    def test_rt_findings_carry_spans_into_sql_text(self, typed):
        sql = "SELECT * FROM TypedData WHERE S > 40000"
        c = check(typed, sql)
        diag = [d for d in c if d.code == "RT307"][0]
        assert diag.span is not None
        assert sql[diag.span.column - 1] == "S"

    def test_programmatic_query_without_spans(self, typed):
        query = parse_query("SELECT * FROM TypedData WHERE T = 2.5")
        collector = Collector()
        typecheck_query(typed, query, DEFAULT_REGISTRY, collector)
        assert rt_codes(collector) == ["RT306"]
        assert all(d.span is None for d in collector)

    def test_strict_mode_rejects_type_error_before_reading(self, ipars_l0):
        from repro.core import ExecOptions, Virtualizer

        _, text, mount = ipars_l0
        with Virtualizer(text, mount) as virt:
            with pytest.raises(QueryValidationError) as exc:
                virt.query(
                    "SELECT X FROM IparsData WHERE SPEED(X, Y, Z) = 'fast'",
                    options=ExecOptions(remote=False, strict=True),
                )
            assert "static-analysis" in str(exc.value)
            assert virt.stats.read_calls == 0
            assert virt.stats.files_opened == 0

    def test_strict_mode_allows_clean_query(self, ipars_l0):
        from repro.core import ExecOptions, Virtualizer

        _, text, mount = ipars_l0
        with Virtualizer(text, mount) as virt:
            table = virt.query(
                "SELECT X FROM IparsData WHERE TIME > 2 AND SPEED(X, Y, Z) >= 0",
                options=ExecOptions(remote=False, strict=True),
            )
            assert table.num_rows > 0
