"""Tests for stored views and their composition."""

import numpy as np
import pytest

from repro.core import ExecOptions
from repro.errors import QueryValidationError
from repro.sql import parse_query
from repro.sql.views import ViewRegistry

BASE_COLUMNS = ("REL", "TIME", "X", "Y", "Z", "SOIL", "SGAS")


class TestViewRegistry:
    @pytest.fixture
    def registry(self):
        registry = ViewRegistry()
        registry.define(
            "HighOil",
            "SELECT REL, TIME, X, SOIL FROM IparsData WHERE SOIL > 0.7",
        )
        return registry

    def test_define_and_lookup(self, registry):
        assert "HighOil" in registry
        assert registry.get("HighOil").base_table == "IparsData"
        assert registry.names == ["HighOil"]

    def test_duplicate_rejected(self, registry):
        with pytest.raises(QueryValidationError, match="already exists"):
            registry.define("HighOil", "SELECT X FROM IparsData")

    def test_self_reference_rejected(self, registry):
        with pytest.raises(QueryValidationError, match="itself"):
            registry.define("Loop", "SELECT X FROM Loop")

    def test_base_table_of(self, registry):
        registry.define("Recent", "SELECT REL, SOIL FROM HighOil WHERE TIME > 10")
        assert registry.base_table_of("Recent") == "IparsData"
        assert registry.base_table_of("IparsData") == "IparsData"

    def test_drop(self, registry):
        registry.drop("HighOil")
        assert "HighOil" not in registry


class TestComposition:
    @pytest.fixture
    def registry(self):
        registry = ViewRegistry()
        registry.define(
            "HighOil",
            "SELECT REL, TIME, X, SOIL FROM IparsData WHERE SOIL > 0.7",
        )
        return registry

    def test_where_conjunction(self, registry):
        resolved = registry.resolve(
            "SELECT X FROM HighOil WHERE TIME > 5", BASE_COLUMNS
        )
        assert resolved.table == "IparsData"
        assert resolved.select == ["X"]
        assert "SOIL > 0.7" in str(resolved.where)
        assert "TIME > 5" in str(resolved.where)

    def test_select_star_expands_to_view_columns(self, registry):
        resolved = registry.resolve("SELECT * FROM HighOil", BASE_COLUMNS)
        assert resolved.select == ["REL", "TIME", "X", "SOIL"]

    def test_hidden_column_in_select_rejected(self, registry):
        with pytest.raises(QueryValidationError):
            registry.resolve("SELECT SGAS FROM HighOil", BASE_COLUMNS)

    def test_hidden_column_in_where_rejected(self, registry):
        with pytest.raises(QueryValidationError, match="not exposed"):
            registry.resolve(
                "SELECT X FROM HighOil WHERE SGAS < 0.5", BASE_COLUMNS
            )

    def test_view_without_where(self):
        registry = ViewRegistry()
        registry.define("Coords", "SELECT X, Y, Z FROM IparsData")
        resolved = registry.resolve("SELECT X FROM Coords", BASE_COLUMNS)
        assert resolved.where is None
        resolved2 = registry.resolve(
            "SELECT X FROM Coords WHERE X > 1", BASE_COLUMNS
        )
        assert "X > 1" in str(resolved2.where)

    def test_stacked_views(self, registry):
        registry.define(
            "RecentHighOil", "SELECT REL, SOIL FROM HighOil WHERE TIME > 10"
        )
        resolved = registry.resolve(
            "SELECT SOIL FROM RecentHighOil WHERE REL = 1", BASE_COLUMNS
        )
        assert resolved.table == "IparsData"
        text = str(resolved.where)
        assert "SOIL > 0.7" in text and "TIME > 10" in text and "REL = 1" in text

    def test_stacked_view_hides_dropped_columns(self, registry):
        registry.define("JustSoil", "SELECT SOIL FROM HighOil")
        with pytest.raises(QueryValidationError):
            registry.resolve("SELECT TIME FROM JustSoil", BASE_COLUMNS)

    def test_cycle_rejected(self):
        registry = ViewRegistry()
        registry.define("A", "SELECT X FROM Base")
        registry.define("B", "SELECT X FROM A")
        with pytest.raises(QueryValidationError, match="cycle"):
            # Redefining A over B would loop; new name over B mentioning A
            # chain cannot cycle since A exists — simulate by defining a
            # view named 'Base' over B, closing the loop.
            registry.define("Base", "SELECT X FROM B")

    def test_non_view_passthrough(self, registry):
        query = parse_query("SELECT X FROM IparsData WHERE X > 0")
        assert registry.resolve(query, BASE_COLUMNS) is query


class TestCatalogViews:
    def test_view_query_end_to_end(self, tmp_path):
        from repro.datasets import IparsConfig, ipars
        from repro.storm import Catalog, VirtualCluster

        config = IparsConfig(num_rels=2, num_times=6, cells_per_node=20,
                             num_nodes=1)
        cluster = VirtualCluster.create(str(tmp_path), 1)
        text, _ = ipars.generate(config, "I", cluster.mount())
        with Catalog(cluster) as catalog:
            catalog.register(text)
            catalog.create_view(
                "HighOil",
                "SELECT REL, TIME, X, SOIL FROM IparsData WHERE SOIL > 0.7",
            )
            through_view = catalog.query(
                "SELECT SOIL FROM HighOil WHERE TIME <= 3",
                ExecOptions(remote=False),
            )
            direct = catalog.query(
                "SELECT SOIL FROM IparsData WHERE SOIL > 0.7 AND TIME <= 3",
                ExecOptions(remote=False),
            )
            assert through_view.num_rows == direct.num_rows
            np.testing.assert_array_equal(
                np.sort(through_view.table["SOIL"]),
                np.sort(direct.table["SOIL"]),
            )

    def test_view_over_unknown_table(self, tmp_path):
        from repro.errors import StormError
        from repro.storm import Catalog, VirtualCluster

        cluster = VirtualCluster.create(str(tmp_path), 1)
        with Catalog(cluster) as catalog:
            with pytest.raises(StormError, match="unknown table"):
                catalog.create_view("V", "SELECT X FROM Ghost")

    def test_bad_view_definition_rolls_back(self, tmp_path):
        from repro.datasets import IparsConfig, ipars
        from repro.storm import Catalog, VirtualCluster

        config = IparsConfig(num_rels=1, num_times=2, cells_per_node=5,
                             num_nodes=1)
        cluster = VirtualCluster.create(str(tmp_path), 1)
        text, _ = ipars.generate(config, "I", cluster.mount())
        with Catalog(cluster) as catalog:
            catalog.register(text)
            with pytest.raises(Exception):
                catalog.create_view("Bad", "SELECT GHOST FROM IparsData")
            assert "Bad" not in catalog.views
