"""Tests for the multi-dataset catalog and planner diagnostics."""

import numpy as np
import pytest

from repro.core import CompiledDataset, ExecOptions, local_mount
from repro.datasets import IparsConfig, TitanConfig, ipars, titan
from repro.errors import StormError
from repro.index import build_summaries, summaries_path
from repro.metadata import descriptor_to_xml, parse_descriptor
from repro.storm import VirtualCluster
from repro.storm.catalog import Catalog


@pytest.fixture(scope="module")
def multi_env(tmp_path_factory):
    """One cluster hosting both an IPARS and a Titan dataset."""
    root = tmp_path_factory.mktemp("catalog")
    cluster = VirtualCluster.create(str(root), 2)
    ipars_cfg = IparsConfig(num_rels=2, num_times=6, cells_per_node=20,
                            num_nodes=2)
    titan_cfg = TitanConfig(chunks_x=4, chunks_y=2, chunks_z=2, chunks_t=2,
                            elems_per_chunk=50, num_nodes=2)
    ipars_text, _ = ipars.generate(ipars_cfg, "L0", cluster.mount())
    titan_text, _ = titan.generate(titan_cfg, cluster.mount())
    # Persist Titan summaries where the catalog auto-discovers them.
    dataset = CompiledDataset(titan_text)
    build_summaries(dataset, cluster.mount()).save(
        summaries_path(cluster.root, "TitanData")
    )
    return cluster, ipars_cfg, titan_cfg, ipars_text, titan_text


class TestCatalog:
    def test_register_and_route(self, multi_env):
        cluster, ipars_cfg, titan_cfg, ipars_text, titan_text = multi_env
        with Catalog(cluster) as catalog:
            catalog.register(ipars_text)
            catalog.register(titan_text)
            assert catalog.table_names == ["IparsData", "TitanData"]

            r1 = catalog.query(
                "SELECT REL FROM IparsData WHERE TIME = 1",
                ExecOptions(remote=False),
            )
            assert r1.num_rows == ipars_cfg.num_rels * ipars_cfg.total_cells
            r2 = catalog.query("SELECT S1 FROM TitanData", ExecOptions(remote=False))
            assert r2.num_rows == titan_cfg.total_rows

    def test_summaries_auto_discovered(self, multi_env):
        cluster, _, titan_cfg, _, titan_text = multi_env
        with Catalog(cluster) as catalog:
            catalog.register(titan_text)
            dataset = catalog.dataset("TitanData")
            assert dataset.summaries is not None
            plan = dataset.plan(
                "SELECT X FROM TitanData WHERE X < 1 AND Y < 1"
            )
            assert len(plan.afcs) < titan_cfg.total_chunks

    def test_xml_registration(self, multi_env):
        cluster, ipars_cfg, _, ipars_text, _ = multi_env
        xml = descriptor_to_xml(parse_descriptor(ipars_text))
        with Catalog(cluster) as catalog:
            name = catalog.register(xml)
            assert name == "IparsData"
            result = catalog.query(
                "SELECT TIME FROM IparsData WHERE TIME <= 2",
                ExecOptions(remote=False),
            )
            assert result.num_rows == 2 * ipars_cfg.num_rels * ipars_cfg.total_cells

    def test_unknown_table(self, multi_env):
        cluster, *_ = multi_env
        with Catalog(cluster) as catalog:
            with pytest.raises(StormError, match="no dataset"):
                catalog.query("SELECT X FROM Ghost")

    def test_duplicate_registration(self, multi_env):
        cluster, _, _, ipars_text, _ = multi_env
        with Catalog(cluster) as catalog:
            catalog.register(ipars_text)
            with pytest.raises(StormError, match="already registered"):
                catalog.register(ipars_text)

    def test_unregister(self, multi_env):
        cluster, _, _, ipars_text, _ = multi_env
        with Catalog(cluster) as catalog:
            catalog.register(ipars_text)
            catalog.unregister("IparsData")
            assert "IparsData" not in catalog

    def test_interpreted_mode(self, multi_env):
        cluster, ipars_cfg, _, ipars_text, _ = multi_env
        with Catalog(cluster) as catalog:
            catalog.register(ipars_text, use_codegen=False)
            dataset = catalog.dataset("IparsData")
            assert type(dataset).__name__ == "CompiledDataset"
            assert catalog.query(
                "SELECT X FROM IparsData WHERE TIME = 1",
                ExecOptions(remote=False),
            ).num_rows > 0

    def test_explain_routes(self, multi_env):
        cluster, _, _, ipars_text, titan_text = multi_env
        with Catalog(cluster) as catalog:
            catalog.register(ipars_text)
            catalog.register(titan_text)
            assert "IparsData" in catalog.explain("SELECT X FROM IparsData")
            assert "TitanData" in catalog.explain("SELECT X FROM TitanData")


class TestPlannerWarnings:
    def test_clean_descriptor_has_no_warnings(self, multi_env):
        _, _, _, ipars_text, _ = multi_env
        assert CompiledDataset(ipars_text).warnings == []

    def test_degenerate_alignment_warns(self):
        text = """
[S]
H = int
A = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATA { DATASET h DATASET a }
  DATASET "h" { DATASPACE { H } DATA { DIR[0]/h } }
  DATASET "a" { DATASPACE { LOOP G 0:9:1 { A } } DATA { DIR[0]/a } }
}
"""
        dataset = CompiledDataset(text)
        assert any("dense loop suffix" in w for w in dataset.warnings)

    def test_missing_index_warns_for_large_data(self):
        text = """
[S]
A = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATASPACE { LOOP G 0:99999999:1 { A } }
  DATA { DIR[0]/huge }
}
"""
        dataset = CompiledDataset(text)
        assert any("no DATAINDEX" in w for w in dataset.warnings)
        assert any("256 MB" in w for w in dataset.warnings)
