"""Tests for the deterministic cost model."""

import pytest

from repro.core.stats import IOStats
from repro.storm.cost import CostModel, POSTGRES_COST, STORM_COST


def stats_with(**kwargs):
    stats = IOStats()
    for name, value in kwargs.items():
        setattr(stats, name, value)
    return stats


class TestNodeTime:
    def test_bandwidth_term(self):
        model = CostModel(disk_bandwidth=100e6, seek_time=0, open_time=0,
                          tuple_cpu=0, filter_cpu=0)
        stats = stats_with(bytes_read=200_000_000)
        assert model.node_time(stats) == pytest.approx(2.0)

    def test_seek_and_open_terms(self):
        model = CostModel(seek_time=0.01, open_time=0.002, tuple_cpu=0,
                          filter_cpu=0)
        stats = stats_with(seeks=10, files_opened=5)
        assert model.node_time(stats) == pytest.approx(0.11)

    def test_cpu_terms(self):
        model = CostModel(tuple_cpu=1e-6, filter_cpu=1e-6, seek_time=0,
                          open_time=0)
        stats = stats_with(rows_extracted=1_000_000)
        assert model.node_time(stats) == pytest.approx(2.0)

    def test_monotone_in_bytes(self):
        small = STORM_COST.node_time(stats_with(bytes_read=1_000_000))
        large = STORM_COST.node_time(stats_with(bytes_read=100_000_000))
        assert large > small


class TestMakespan:
    def test_parallel_nodes_take_the_max(self):
        model = CostModel(query_overhead=0, network_latency=0)
        fast = stats_with(bytes_read=1_000_000)
        slow = stats_with(bytes_read=25_000_000)
        combined = model.makespan({"a": fast, "b": slow})
        assert combined == pytest.approx(model.node_time(slow))

    def test_network_adds(self):
        model = CostModel(query_overhead=0, network_bandwidth=10e6,
                          network_latency=0.001)
        t = model.makespan({}, bytes_sent=10_000_000, messages=10)
        assert t == pytest.approx(1.0 + 0.01)

    def test_query_overhead_floor(self):
        assert STORM_COST.makespan({}) == pytest.approx(
            STORM_COST.query_overhead
        )

    def test_scaling_shape(self):
        """Halving per-node bytes roughly halves the makespan: the
        mechanism behind Figure 10's near-linear scaling."""
        model = CostModel(query_overhead=0)
        one_node = model.makespan({"a": stats_with(bytes_read=100_000_000)})
        two_nodes = model.makespan(
            {
                "a": stats_with(bytes_read=50_000_000),
                "b": stats_with(bytes_read=50_000_000),
            }
        )
        assert two_nodes == pytest.approx(one_node / 2)


class TestCalibration:
    def test_postgres_costs_more_per_tuple(self):
        stats = stats_with(rows_extracted=1_000_000)
        assert POSTGRES_COST.node_time(stats) > STORM_COST.node_time(stats)

    def test_models_are_frozen(self):
        with pytest.raises(Exception):
            STORM_COST.disk_bandwidth = 1.0
