"""Unit tests for the data mover and filtering services."""

import numpy as np
import pytest

from repro.core import ExecOptions
from repro.core.stats import IOStats
from repro.core.table import VirtualTable
from repro.sql import DEFAULT_REGISTRY, parse_where
from repro.storm.filtering import FilteringService
from repro.storm.mover import DataMoverService, MESSAGE_OVERHEAD
from repro.storm.partition import BlockPartitioner, RoundRobinPartitioner


def make_table(n):
    return VirtualTable(
        {
            "A": np.arange(n, dtype=np.float32),
            "B": np.arange(n, dtype=np.int16),
        },
        order=["A", "B"],
    )


class TestDataMover:
    def test_row_bytes(self):
        mover = DataMoverService()
        assert mover.row_bytes(make_table(3)) == 4 + 2

    def test_move_accounting(self):
        mover = DataMoverService()
        stats = IOStats()
        deliveries = mover.move(
            make_table(100), RoundRobinPartitioner(), 4, stats
        )
        assert len(deliveries) == 4
        assert sum(d.table.num_rows for d in deliveries) == 100
        expected_payload = 100 * 6
        total = sum(d.bytes_sent for d in deliveries)
        messages = sum(d.messages for d in deliveries)
        assert total == expected_payload + messages * MESSAGE_OVERHEAD
        assert stats.bytes_sent == total

    def test_empty_clients_send_nothing(self):
        mover = DataMoverService()
        deliveries = mover.move(make_table(2), BlockPartitioner(), 4)
        empty = [d for d in deliveries if d.table.num_rows == 0]
        assert all(d.bytes_sent == 0 and d.messages == 0 for d in empty)

    def test_message_chunking(self):
        mover = DataMoverService(message_bytes=100)
        (delivery,) = mover.move(make_table(1000), BlockPartitioner(), 1)
        # 6000 payload bytes over 100-byte messages.
        assert delivery.messages == 60

    def test_delivered_content_is_the_partition(self):
        mover = DataMoverService()
        table = make_table(10)
        deliveries = mover.move(table, BlockPartitioner(), 2)
        np.testing.assert_array_equal(deliveries[0].table["A"], np.arange(5))
        np.testing.assert_array_equal(
            deliveries[1].table["A"], np.arange(5, 10)
        )


class TestFilteringService:
    @pytest.fixture
    def service(self):
        return FilteringService()

    def test_no_predicate_projects(self, service):
        columns = {"A": np.arange(4.0), "B": np.arange(4.0) * 2}
        out = service.apply(None, columns, ["B"], 4)
        assert set(out) == {"B"}
        np.testing.assert_array_equal(out["B"], [0, 2, 4, 6])

    def test_vector_predicate(self, service):
        columns = {"A": np.arange(4.0)}
        out = service.apply(parse_where("A >= 2"), columns, ["A"], 4)
        np.testing.assert_array_equal(out["A"], [2, 3])

    def test_all_filtered_returns_none(self, service):
        columns = {"A": np.arange(4.0)}
        assert service.apply(parse_where("A > 99"), columns, ["A"], 4) is None

    def test_scalar_predicates(self, service):
        columns = {"A": np.arange(3.0)}
        assert service.apply(parse_where("FALSE"), columns, ["A"], 3) is None
        out = service.apply(parse_where("TRUE"), columns, ["A"], 3)
        assert len(out["A"]) == 3

    def test_stats_row_counting(self, service):
        stats = IOStats()
        columns = {"A": np.arange(10.0)}
        service.apply(parse_where("A < 4"), columns, ["A"], 10, stats)
        assert stats.rows_output == 4

    def test_udf_predicate(self, service):
        columns = {
            "VX": np.array([3.0, 30.0]),
            "VY": np.array([4.0, 40.0]),
            "VZ": np.zeros(2),
        }
        out = service.apply(
            parse_where("SPEED(VX, VY, VZ) < 10"), columns, ["VX"], 2
        )
        np.testing.assert_array_equal(out["VX"], [3.0])

    def test_filter_only_columns_dropped_from_output(self, service):
        columns = {"A": np.arange(4.0), "HIDDEN": np.arange(4.0)}
        out = service.apply(
            parse_where("HIDDEN >= 2"), columns, ["A"], 4
        )
        assert set(out) == {"A"}

    def test_refilter_empty_result_is_writable(self, service):
        """Regression: the nothing-matches path used to return
        ``columns[name][:0]`` — zero-length *views* of the frozen cached
        arrays, bypassing ``own_column``'s writability promise."""
        from repro.core import VirtualTable

        frozen = np.arange(8.0)
        frozen.setflags(write=False)
        cached = VirtualTable({"A": frozen}, order=["A"])
        out = service.refilter(parse_where("A > 99"), cached, ["A"])
        assert out.num_rows == 0
        assert out["A"].flags.writeable
        assert out["A"].base is not frozen

    def test_refilter_nonempty_result_never_aliases_cache(self, service):
        from repro.core import VirtualTable

        frozen = np.arange(8.0)
        frozen.setflags(write=False)
        cached = VirtualTable({"A": frozen}, order=["A"])
        out = service.refilter(parse_where("A >= 0"), cached, ["A"])
        assert out.num_rows == 8
        out["A"][0] = -1.0  # must not raise, must not touch the cache
        assert frozen[0] == 0.0


class TestConcurrentQueries:
    def test_parallel_submits_are_safe(self, ipars_l0):
        """Concurrent submit() calls from multiple threads agree with
        serial execution (per-node extraction is serialised by a lock)."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.core import GeneratedDataset
        from repro.storm import QueryService, VirtualCluster

        config, text, mount = ipars_l0
        # Rebuild a cluster object over the fixture's root directory.
        root = mount("", "").rstrip("/")
        cluster = VirtualCluster(root, [f"osu{i}" for i in range(config.num_nodes)])
        service = QueryService(GeneratedDataset(text), cluster)
        queries = [
            f"SELECT REL, TIME, SOIL FROM IparsData WHERE TIME = {t}"
            for t in range(1, 9)
        ]
        expected = [service.submit(q, ExecOptions(remote=False)).num_rows for q in queries]
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(
                pool.map(lambda q: service.submit(q, ExecOptions(remote=False)).num_rows,
                         queries)
            )
        assert results == expected
        service.close()
