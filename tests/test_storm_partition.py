"""Unit + property tests for the partition generation service."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.table import VirtualTable
from repro.errors import PartitionError
from repro.storm.partition import (
    BlockPartitioner,
    HashPartitioner,
    RangePartitioner,
    RoundRobinPartitioner,
    make_partitioner,
)


def table_of(n):
    return VirtualTable(
        {"K": np.arange(n) % 7, "V": np.arange(n, dtype=np.float64)},
        order=["K", "V"],
    )


class TestRoundRobin:
    def test_assignment(self):
        parts = RoundRobinPartitioner().partition(table_of(10), 3)
        assert [list(p) for p in parts] == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]

    def test_single_client_is_identity(self):
        (only,) = RoundRobinPartitioner().partition(table_of(5), 1)
        assert list(only) == list(range(5))


class TestBlock:
    def test_contiguous_blocks(self):
        parts = BlockPartitioner().partition(table_of(10), 3)
        assert [list(p) for p in parts] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_empty_table(self):
        parts = BlockPartitioner().partition(table_of(0), 3)
        assert all(len(p) == 0 for p in parts)

    def test_more_clients_than_rows(self):
        parts = BlockPartitioner().partition(table_of(2), 5)
        assert sum(len(p) for p in parts) == 2


class TestHash:
    def test_colocation(self):
        table = table_of(70)
        parts = HashPartitioner(["K"]).partition(table, 4)
        # All rows with equal K land on the same client.
        key_to_client = {}
        for client, idx in enumerate(parts):
            for i in idx:
                k = int(table["K"][i])
                assert key_to_client.setdefault(k, client) == client

    def test_requires_attrs(self):
        with pytest.raises(PartitionError):
            HashPartitioner([])

    def test_multi_attr_keys(self):
        table = table_of(20)
        parts = HashPartitioner(["K", "V"]).partition(table, 3)
        assert sum(len(p) for p in parts) == 20

    def test_round_float_keys_spread(self):
        """Round coordinates (10.0, 20.0, ...) have all-zero low mantissa
        bits; the hash finalizer must still spread them across clients."""
        table = VirtualTable(
            {"X": (np.arange(1000, dtype=np.float64) % 40) * 10.0}
        )
        parts = HashPartitioner(["X"]).partition(table, 4)
        sizes = [len(p) for p in parts]
        assert min(sizes) > 0
        assert max(sizes) < 600


class TestRange:
    def test_split(self):
        table = table_of(10)  # V = 0..9
        parts = RangePartitioner("V", [3, 7]).partition(table, 3)
        # Boundary values go right: V=3 lands on client 1, V=7 on client 2.
        assert [list(p) for p in parts] == [
            [0, 1, 2], [3, 4, 5, 6], [7, 8, 9]
        ]

    def test_boundary_count_mismatch(self):
        with pytest.raises(PartitionError, match="boundaries"):
            RangePartitioner("V", [1]).partition(table_of(5), 3)

    def test_unsorted_boundaries(self):
        with pytest.raises(PartitionError, match="sorted"):
            RangePartitioner("V", [7, 3])


class TestFactory:
    def test_named_schemes(self):
        assert isinstance(make_partitioner("round_robin"), RoundRobinPartitioner)
        assert isinstance(make_partitioner("block"), BlockPartitioner)
        assert isinstance(
            make_partitioner("hash", attrs=["K"]), HashPartitioner
        )
        assert isinstance(
            make_partitioner("range", attr="V", boundaries=[1.0]),
            RangePartitioner,
        )

    def test_unknown_scheme(self):
        with pytest.raises(PartitionError, match="unknown"):
            make_partitioner("zigzag")

    def test_invalid_client_count(self):
        with pytest.raises(PartitionError):
            RoundRobinPartitioner().partition(table_of(3), 0)


@given(
    st.integers(0, 200),
    st.integers(1, 9),
    st.sampled_from(["round_robin", "block"]),
)
@settings(max_examples=150, deadline=None)
def test_partition_is_exact_cover(num_rows, num_clients, scheme):
    """Every row is delivered to exactly one client (no loss, no dup)."""
    partitioner = make_partitioner(scheme)
    parts = partitioner.partition(table_of(num_rows), num_clients)
    assert len(parts) == num_clients
    combined = np.concatenate(parts) if parts else np.empty(0)
    assert sorted(combined.tolist()) == list(range(num_rows))


@given(st.integers(0, 200), st.integers(1, 9))
@settings(max_examples=100, deadline=None)
def test_hash_partition_is_exact_cover(num_rows, num_clients):
    parts = HashPartitioner(["K"]).partition(table_of(num_rows), num_clients)
    combined = np.concatenate(parts) if parts else np.empty(0)
    assert sorted(combined.tolist()) == list(range(num_rows))


@given(st.integers(1, 100), st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_block_partition_balanced(num_rows, num_clients):
    parts = BlockPartitioner().partition(table_of(num_rows), num_clients)
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(s for s in sizes) <= -(-num_rows // num_clients)
