"""Integration tests for the STORM service suite."""

import numpy as np
import pytest

from repro.core import CompiledDataset, ExecOptions, GeneratedDataset
from repro.core.stats import IOStats
from repro.datasets import IparsConfig, ipars
from repro.storm import (
    BlockPartitioner,
    DataMoverService,
    FilteringService,
    IndexingService,
    QueryService,
    RoundRobinPartitioner,
    VirtualCluster,
)
from repro.sql import parse_where
from repro.sql.ranges import extract_ranges
from tests.conftest import assert_tables_equal


@pytest.fixture(scope="module")
def storm(tmp_path_factory):
    root = tmp_path_factory.mktemp("storm")
    config = IparsConfig(num_rels=2, num_times=10, cells_per_node=50, num_nodes=4)
    cluster = VirtualCluster.create(str(root), config.num_nodes)
    text, _ = ipars.generate(config, "L0", cluster.mount())
    dataset = GeneratedDataset(text)
    service = QueryService(dataset, cluster)
    yield config, cluster, dataset, service
    service.close()


class TestQueryService:
    def test_full_scan(self, storm):
        config, _, _, service = storm
        result = service.submit("SELECT * FROM IparsData", ExecOptions(remote=False))
        assert result.num_rows == config.total_rows
        assert result.afc_count == config.num_nodes * config.num_rels * config.num_times

    def test_parallel_equals_serial(self, storm):
        _, _, _, service = storm
        sql = "SELECT X, SOIL FROM IparsData WHERE TIME > 3 AND SOIL > 0.4"
        a = service.submit(sql, ExecOptions(parallel=True, remote=False))
        b = service.submit(sql, ExecOptions(parallel=False, remote=False))
        assert_tables_equal(a.table.canonical(), b.table.canonical())

    def test_work_spread_across_nodes(self, storm):
        config, _, _, service = storm
        service.drop_caches()
        result = service.submit("SELECT * FROM IparsData", ExecOptions(remote=False))
        nodes = [n for n in result.per_node_stats if n.startswith("osu")]
        assert len(nodes) == config.num_nodes
        reads = [result.per_node_stats[n].bytes_read for n in nodes]
        assert max(reads) == min(reads)  # homogeneous partitioning

    def test_remote_delivery(self, storm):
        _, _, _, service = storm
        result = service.submit(
            "SELECT REL, TIME FROM IparsData WHERE TIME <= 2",
            ExecOptions(
                num_clients=3,
                partitioner=RoundRobinPartitioner(),
                remote=True,
            ),
        )
        assert len(result.deliveries) == 3
        total = sum(d.table.num_rows for d in result.deliveries)
        assert total == result.num_rows
        assert result.total_stats.bytes_sent > 0

    def test_local_query_sends_nothing(self, storm):
        _, _, _, service = storm
        result = service.submit(
            "SELECT REL FROM IparsData WHERE TIME = 1",
            ExecOptions(remote=False),
        )
        assert result.total_stats.bytes_sent == 0
        assert result.deliveries == []

    def test_local_query_has_no_transfer_stats(self, storm):
        # Regression: local (remote=False) queries never run the data
        # mover, but per_node_stats still grew a spurious all-zero
        # "_transfer" entry that benchmarks iterated over.
        _, _, _, service = storm
        result = service.submit(
            "SELECT REL FROM IparsData WHERE TIME = 1",
            ExecOptions(remote=False),
        )
        assert "_transfer" not in result.per_node_stats
        assert set(result.per_node_stats) == set(service.sources)

    def test_remote_query_reports_transfer_stats(self, storm):
        _, _, _, service = storm
        result = service.submit(
            "SELECT REL FROM IparsData WHERE TIME = 1",
            ExecOptions(remote=True),
        )
        assert "_transfer" in result.per_node_stats
        assert result.per_node_stats["_transfer"].bytes_sent > 0

    def test_simulated_time_positive_and_deterministic(self, storm):
        _, _, _, service = storm
        sql = "SELECT * FROM IparsData WHERE TIME > 5"
        service.drop_caches()
        a = service.submit(sql, ExecOptions(remote=False)).simulated_seconds
        service.drop_caches()
        b = service.submit(sql, ExecOptions(remote=False)).simulated_seconds
        assert a == b > 0

    def test_empty_result(self, storm):
        _, _, _, service = storm
        result = service.submit(
            "SELECT * FROM IparsData WHERE TIME > 500",
            ExecOptions(remote=False),
        )
        assert result.num_rows == 0
        assert result.table.column_names[0] == "REL"

    def test_summary_string(self, storm):
        _, _, _, service = storm
        result = service.submit("SELECT REL FROM IparsData WHERE TIME = 1")
        assert "rows" in result.summary() and "sim" in result.summary()


class TestIndexingService:
    def test_candidate_files(self, storm):
        config, _, dataset, _ = storm
        service = IndexingService(dataset)
        ranges = extract_ranges(parse_where("REL = 0"))
        files = service.candidate_files(ranges)
        assert all(f.env.get("REL", 0) == 0 for f in files)
        # coords files (no REL binding) always survive
        assert any(f.leaf_name == "coords" for f in files)

    def test_lookup_by_node(self, storm):
        config, _, dataset, _ = storm
        service = IndexingService(dataset)
        by_node = service.lookup_by_node({})
        assert set(by_node) == {f"osu{i}" for i in range(config.num_nodes)}
        counts = {n: len(v) for n, v in by_node.items()}
        assert len(set(counts.values())) == 1


class TestMover:
    def test_bytes_accounting(self, storm):
        _, _, _, service = storm
        result = service.submit(
            "SELECT REL, TIME FROM IparsData WHERE TIME <= 2",
            ExecOptions(num_clients=2, remote=True),
        )
        mover = DataMoverService()
        row_bytes = 2 + 4  # REL short int + TIME int
        for delivery in result.deliveries:
            expected = delivery.table.num_rows * row_bytes
            assert delivery.bytes_sent >= expected

    def test_block_partitioner_delivery(self, storm):
        _, _, _, service = storm
        result = service.submit(
            "SELECT TIME FROM IparsData WHERE TIME <= 4",
            ExecOptions(
                num_clients=2,
                partitioner=BlockPartitioner(),
                remote=True,
            ),
        )
        first, second = result.deliveries
        # Block partitioning keeps row order: client 0 gets the first half.
        assert first.table.num_rows >= second.table.num_rows


class TestCluster:
    def test_create_and_mount(self, tmp_path):
        cluster = VirtualCluster.create(str(tmp_path), 3, prefix="n")
        assert cluster.node_names == ["n0", "n1", "n2"]
        mount = cluster.mount()
        assert mount("n1", "x/y").endswith("n1/x/y")

    def test_unknown_node(self, tmp_path):
        from repro.errors import ClusterError

        cluster = VirtualCluster.create(str(tmp_path), 1)
        with pytest.raises(ClusterError, match="unknown node"):
            cluster.node("ghost")

    def test_duplicate_node(self, tmp_path):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError, match="duplicate"):
            VirtualCluster(str(tmp_path), ["a", "a"])

    def test_disk_usage_and_wipe(self, tmp_path):
        cluster = VirtualCluster.create(str(tmp_path), 2)
        node = cluster.node("osu0")
        node.ensure_dir("d")
        with open(node.path("d/f.bin"), "wb") as handle:
            handle.write(b"x" * 100)
        assert cluster.disk_usage()["osu0"] == 100
        cluster.wipe()
        assert cluster.disk_usage()["osu0"] == 0

    def test_for_storage(self, tmp_path):
        from repro.metadata import parse_storage

        storage = parse_storage(
            "[D]\nDatasetDescription = S\nDIR[0] = alpha/d\nDIR[1] = beta/d\n"
        )["D"]
        cluster = VirtualCluster.for_storage(str(tmp_path), storage)
        assert set(cluster.node_names) == {"alpha", "beta"}
