"""Tests for the streaming (batched) query API."""

import numpy as np
import pytest

from repro.core import ExecOptions, Virtualizer
from repro.core.table import concat_tables
from repro.errors import ExtractionError
from tests.conftest import assert_tables_equal


@pytest.fixture(scope="module")
def v(paper_dataset):
    text, mount = paper_dataset
    virtualizer = Virtualizer(text, mount)
    yield virtualizer
    virtualizer.close()


class TestQueryIter:
    def test_batches_reassemble_to_full_result(self, v):
        sql = "SELECT REL, TIME, SOIL FROM IparsData WHERE SOIL > 0.3"
        whole = v.query(sql)
        batches = list(v.query_iter(sql, options=ExecOptions(batch_rows=100)))
        assert len(batches) > 1
        assert_tables_equal(concat_tables(batches), whole)

    def test_batch_sizes_bounded_by_afc_granularity(self, v):
        # Each AFC yields 10 rows; with batch_rows=25 batches flush at the
        # first AFC boundary at or past 25 rows.
        batches = list(
            v.query_iter("SELECT X FROM IparsData", options=ExecOptions(batch_rows=25))
        )
        assert all(25 <= b.num_rows <= 34 for b in batches[:-1])
        assert sum(b.num_rows for b in batches) == 3200

    def test_chunk_cap_tightens_batches(self, paper_dataset):
        text, mount = paper_dataset
        with Virtualizer(text, mount, chunk_row_cap=5) as capped:
            batches = list(
                capped.query_iter("SELECT X FROM IparsData", options=ExecOptions(batch_rows=5))
            )
            assert all(b.num_rows == 5 for b in batches)

    def test_filtered_stream(self, v):
        sql = "SELECT SOIL FROM IparsData WHERE SOIL > 0.95"
        whole = v.query(sql)
        batches = list(v.query_iter(sql, options=ExecOptions(batch_rows=8)))
        assert sum(b.num_rows for b in batches) == whole.num_rows
        for batch in batches:
            assert (batch["SOIL"] > 0.95).all()

    def test_empty_result_yields_nothing(self, v):
        batches = list(
            v.query_iter("SELECT X FROM IparsData WHERE TIME > 999")
        )
        assert batches == []

    def test_single_batch_when_large(self, v):
        batches = list(
            v.query_iter("SELECT X FROM IparsData", options=ExecOptions(batch_rows=10**9))
        )
        assert len(batches) == 1
        assert batches[0].num_rows == 3200

    def test_invalid_batch_size(self, v):
        with pytest.raises(ExtractionError):
            list(v.query_iter("SELECT X FROM IparsData", options=ExecOptions(batch_rows=0)))

    def test_stats_accumulate_once(self, paper_dataset):
        from repro.core import IOStats

        text, mount = paper_dataset
        with Virtualizer(text, mount) as fresh:
            stats = IOStats()
            total = sum(
                b.num_rows
                for b in fresh.query_iter(
                    "SELECT X FROM IparsData",
                    stats=stats,
                    options=ExecOptions(batch_rows=64),
                )
            )
            assert stats.rows_output == total == 3200
