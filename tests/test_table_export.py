"""Tests for table export (CSV / npz) and the console-script entry point."""

import io
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.table import VirtualTable


@pytest.fixture
def table():
    return VirtualTable(
        {
            "T": np.array([3, 1, 2], dtype=np.int32),
            "V": np.array([0.5, 1.25, -2.0], dtype=np.float32),
        },
        order=["T", "V"],
    )


class TestCsv:
    def test_basic(self, table):
        out = io.StringIO()
        written = table.to_csv(out)
        lines = out.getvalue().strip().splitlines()
        assert written == 3
        assert lines[0] == "T,V"
        assert lines[1] == "3,0.5"

    def test_no_header(self, table):
        out = io.StringIO()
        table.to_csv(out, header=False)
        assert out.getvalue().splitlines()[0] == "3,0.5"

    def test_limit(self, table):
        out = io.StringIO()
        written = table.to_csv(out, limit=2)
        assert written == 2
        assert len(out.getvalue().strip().splitlines()) == 3  # header + 2

    def test_float_precision_roundtrips(self):
        values = np.array([0.1, 1 / 3, 1e-20], dtype=np.float64)
        t = VirtualTable({"X": values})
        out = io.StringIO()
        t.to_csv(out)
        parsed = [float(l) for l in out.getvalue().strip().splitlines()[1:]]
        np.testing.assert_array_equal(np.array(parsed), values)


class TestNpz:
    def test_roundtrip(self, table, tmp_path):
        path = str(tmp_path / "t.npz")
        table.save_npz(path)
        loaded = VirtualTable.load_npz(path)
        assert loaded.column_names == table.column_names
        np.testing.assert_array_equal(loaded["V"], table["V"])
        assert loaded["T"].dtype == np.int32

    def test_empty_table(self, tmp_path):
        path = str(tmp_path / "e.npz")
        t = VirtualTable({"A": np.empty(0, dtype=np.float32)})
        t.save_npz(path)
        loaded = VirtualTable.load_npz(path)
        assert loaded.num_rows == 0
        assert loaded.column_names == ("A",)


class TestConsoleScript:
    def test_module_entry_point(self, tmp_path):
        desc = tmp_path / "d.desc"
        desc.write_text(
            "[S]\nT = int\nA = float\n\n"
            "[D]\nDatasetDescription = S\nDIR[0] = n/d\n\n"
            'DATASET "D" { DATASPACE { LOOP T 1:2:1 { A } } '
            "DATA { DIR[0]/f } }\n"
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "validate", str(desc)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "descriptor OK" in result.stdout

    def test_module_entry_point_error_path(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "validate", "/no/such/file"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 1
        assert "error:" in result.stderr
