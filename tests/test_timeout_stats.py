"""Regression: a timed-out (abandoned) extraction attempt must not leak
its partial, still-mutating stats into the query's per-node counters."""

import threading
import time

import pytest

from repro.core import ExecOptions, GeneratedDataset
from repro.datasets import IparsConfig, ipars
from repro.storm import QueryService, VirtualCluster

CONFIG = IparsConfig(num_rels=2, num_times=6, cells_per_node=16, num_nodes=2)
SQL = "SELECT REL, TIME, X, SOIL FROM IparsData"

#: Deterministic I/O shape: one read per chunk, serial per node, and no
#: segment cache (services below) so attempt double-counts are visible.
OPTS = ExecOptions(remote=False, coalesce_gap_bytes=0)


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    root = tmp_path_factory.mktemp("timeout_stats")
    cluster = VirtualCluster.create(str(root), CONFIG.num_nodes)
    text, _ = ipars.generate(CONFIG, "L0", cluster.mount())
    return cluster, GeneratedDataset(text)


class _HangingMounts:
    """cluster.mount() stand-in that hangs the Nth resolve for one node."""

    def __init__(self, real_mount, node, hang_on_call):
        self._real = real_mount
        self._node = node
        self._hang_on = hang_on_call
        self._calls = 0
        self._armed = True
        self._lock = threading.Lock()
        self.release = threading.Event()

    def __call__(self):
        return self._resolve

    def _resolve(self, node, path):
        if node == self._node:
            with self._lock:
                self._calls += 1
                hang = self._armed and self._calls == self._hang_on
                if hang:
                    self._armed = False
            if hang:
                self.release.wait(30)
        return self._real(node, path)


def test_timeout_discards_abandoned_attempt_stats(env, monkeypatch):
    cluster, dataset = env

    # Reference: the same query on a clean service, cold, no cache.
    with QueryService(dataset, cluster, segment_cache_bytes=0) as ref:
        clean = ref.submit(SQL, OPTS).per_node_stats["osu0"].as_dict()
    assert clean["read_calls"] > 1

    # Hang the second chunk resolve of osu0's first attempt: the attempt
    # has already read (and counted) one chunk when the timeout abandons
    # it, and the retry then re-reads everything.
    mounts = _HangingMounts(cluster.mount(), "osu0", hang_on_call=2)
    monkeypatch.setattr(cluster, "mount", mounts)
    try:
        with QueryService(dataset, cluster, segment_cache_bytes=0) as service:
            result = service.submit(
                SQL, OPTS.replace(node_timeout=0.2, retries=1)
            )
            assert not result.degraded
            got = result.per_node_stats["osu0"].as_dict()
            # The merged counters are exactly the successful retry's: the
            # abandoned attempt's chunk read is discarded, not added on
            # top (the old code reported clean+1 read calls here).
            for name in (
                "bytes_read",
                "read_calls",
                "chunks_read",
                "rows_extracted",
                "rows_output",
                "afcs_processed",
            ):
                assert got[name] == clean[name], name

            # Release the hung thread; it finishes its abandoned attempt
            # and keeps counting into its own discarded IOStats — the
            # result's counters must not move underneath the caller.
            snapshot = dict(got)
            mounts.release.set()
            time.sleep(0.3)
            assert result.per_node_stats["osu0"].as_dict() == snapshot
    finally:
        mounts.release.set()
