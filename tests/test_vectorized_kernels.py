"""Compiled kernel equivalence: vectorized WHERE vs interpreted oracle.

Part 1 reuses the seeded random-tree generator from
``test_rewrite_equivalence`` to check that :class:`CompiledPredicate`
produces *bit-identical* masks to the interpreted AST walk over 1000
NaN-bearing predicate trees — each kernel evaluated twice so the
selectivity-reordered second pass is exercised too.

Part 2 drives the ablation knob through the full engine: the paper's
fig7/fig8 filter shapes return row-for-row identical tables with
``vectorize="on"`` and ``"off"``, on the eager, streaming, aggregate,
and cache-subsumption paths.

Part 3 covers the satellite regressions: ``IN`` with 1000 values via
one ``np.isin`` pass, empty AND/OR rejected at construction, the
scalar-UDF fallback contract (identical results, RT309 flagged), and
the knob crossing the wire.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import ExecOptions, Virtualizer
from repro.core.kernels import BlockPipeline, CompiledPredicate, KernelCache
from repro.core.stats import IOStats
from repro.diag import analyze_query
from repro.errors import QueryValidationError
from repro.metadata import parse_descriptor
from repro.net.wire import decode_options, encode_options
from repro.sql.ast import And, Comparison, Column, FunctionCall, InList, Literal, Or, in_list_mask
from repro.sql.functions import DEFAULT_REGISTRY, FunctionRegistry, FunctionSignature
from repro.sql.parser import parse_where
from tests.conftest import assert_tables_equal
from tests.test_rewrite_equivalence import (
    N_ROWS,
    make_columns,
    mask_of,
    rand_tree,
)

# ---------------------------------------------------------------------------
# Part 1: randomized kernel-vs-interpreter mask equivalence
# ---------------------------------------------------------------------------

N_TREES = 1000


def kernel_mask(kernel, columns):
    raw = np.asarray(
        kernel.evaluate(columns, N_ROWS), dtype=bool
    )
    return np.broadcast_to(raw, (N_ROWS,)).copy()


class TestRandomizedKernelEquivalence:
    def test_1000_random_trees_match_interpreter_bit_identically(self):
        rng = random.Random(24680)
        for i in range(N_TREES):
            tree = rand_tree(rng, rng.randrange(1, 5))
            kernel = CompiledPredicate(tree, DEFAULT_REGISTRY)
            # Two blocks through one kernel: the second evaluation runs
            # with selectivity-reordered conjuncts and warm buffers.
            for round_no in range(2):
                columns = make_columns(rng)
                expected = mask_of(tree, columns)
                np.testing.assert_array_equal(
                    kernel_mask(kernel, columns),
                    expected,
                    err_msg=f"case {i} round {round_no}: {tree}",
                )

    def test_constant_predicates_never_touch_columns(self):
        kernel = CompiledPredicate(
            parse_where("1 < 2 AND 3 = 3"), DEFAULT_REGISTRY
        )
        assert kernel.is_constant
        # No columns provided at all: a constant kernel must not look.
        assert kernel.evaluate({}, 5) is True
        kernel = CompiledPredicate(parse_where("1 > 2"), DEFAULT_REGISTRY)
        assert kernel.evaluate({}, 5) is False

    def test_empty_block_returns_empty_mask(self):
        kernel = CompiledPredicate(parse_where("A > 1"), DEFAULT_REGISTRY)
        mask = kernel.evaluate({"A": np.empty(0, dtype=np.int64)}, 0)
        assert isinstance(mask, np.ndarray)
        assert mask.shape == (0,)

    def test_unknown_attribute_raises_like_interpreter(self):
        kernel = CompiledPredicate(parse_where("NOPE > 1"), DEFAULT_REGISTRY)
        with pytest.raises(QueryValidationError):
            kernel.evaluate({"A": np.arange(4)}, 4)

    def test_kernel_cache_compiles_once_per_predicate(self):
        cache = KernelCache(DEFAULT_REGISTRY)
        where = parse_where("A > 1 AND B < 2")
        assert cache.get(where) is cache.get(parse_where("A > 1 AND B < 2"))
        assert len(cache) == 1

    def test_block_pipeline_matches_per_block_filtering(self):
        where = parse_where("A > 2 AND B <= 6")
        kernel = CompiledPredicate(where, DEFAULT_REGISTRY)
        rng = np.random.default_rng(7)
        blocks = [
            {
                "A": rng.integers(0, 8, n).astype(np.int64),
                "B": rng.uniform(0, 10, n),
            }
            for n in (3, 17, 64, 1, 0, 29)
        ]
        pipeline = BlockPipeline(kernel, ["A", "B"], ["A", "B"], block_rows=32)
        for block in blocks:
            pipeline.add(block, len(block["A"]))
        pipeline.finish()
        fused = {
            name: np.concatenate(pipeline.pieces[name])
            for name in ("A", "B")
        }
        expected_mask = np.concatenate(
            [
                np.asarray(where.evaluate(b, DEFAULT_REGISTRY))
                for b in blocks
                if len(b["A"])
            ]
        )
        all_a = np.concatenate([b["A"] for b in blocks])
        all_b = np.concatenate([b["B"] for b in blocks])
        np.testing.assert_array_equal(fused["A"], all_a[expected_mask])
        np.testing.assert_array_equal(fused["B"], all_b[expected_mask])
        assert pipeline.rows_selected == int(expected_mask.sum())


# ---------------------------------------------------------------------------
# Part 2: engine-level on-vs-off identity (fig7/fig8 filter shapes)
# ---------------------------------------------------------------------------

ON = ExecOptions(remote=False, vectorize="on")
OFF = ExecOptions(remote=False, vectorize="off")

#: The paper's fig8 (IPARS) archetypes at the small-fixture scale:
#: range subset, range+filter, range+UDF, pure UDF.
IPARS_QUERIES = [
    "SELECT REL, TIME, X, SOIL FROM IparsData WHERE TIME>3 AND TIME<9",
    "SELECT X, SOIL FROM IparsData WHERE TIME>3 AND TIME<9 AND SOIL>0.5",
    "SELECT X, OILVX FROM IparsData "
    "WHERE TIME>3 AND TIME<9 AND SPEED(OILVX, OILVY, OILVZ)<30",
    "SELECT TIME, SOIL FROM IparsData WHERE SPEED(OILVX, OILVY, OILVZ)<20",
    "SELECT REL FROM IparsData WHERE REL IN (0, 1) AND SOIL>0.9",
]

#: fig7 (Titan) archetypes: range box, UDF distance, selective scalar.
TITAN_QUERIES = [
    "SELECT X, Y, Z FROM TitanData "
    "WHERE X>=0 AND X<=2000 AND Y>=0 AND Y<=2000",
    "SELECT X, S1 FROM TitanData WHERE DISTANCE(X, Y, Z)<5000",
    "SELECT S1 FROM TitanData WHERE S1 < 0.01",
]


def assert_identical_rows(a, b):
    """Row-for-row (order-sensitive) equality, stricter than the
    multiset comparison in assert_tables_equal."""
    assert a.column_names == b.column_names
    assert a.num_rows == b.num_rows
    for name in a.column_names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


class TestEngineOnOffIdentity:
    @pytest.mark.parametrize("sql", IPARS_QUERIES)
    def test_ipars_queries_identical(self, ipars_l0, sql):
        _, text, mount = ipars_l0
        with Virtualizer(text, mount) as virt:
            on_stats, off_stats = IOStats(), IOStats()
            fast = virt.query(sql, stats=on_stats, options=ON)
            slow = virt.query(sql, stats=off_stats, options=OFF)
            assert_identical_rows(fast, slow)
            # The knob only changes *how* the filter ran, never what was
            # read or emitted.
            assert on_stats.rows_extracted == off_stats.rows_extracted
            assert on_stats.rows_output == off_stats.rows_output
            assert on_stats.rows_vectorized == on_stats.rows_extracted
            assert off_stats.rows_vectorized == 0

    @pytest.mark.parametrize("sql", TITAN_QUERIES)
    def test_titan_queries_identical(self, titan_small, sql):
        _, text, mount, _ = titan_small
        with Virtualizer(text, mount) as virt:
            fast = virt.query(sql, options=ON)
            slow = virt.query(sql, options=OFF)
            assert_identical_rows(fast, slow)

    def test_streaming_batches_identical(self, ipars_l0):
        _, text, mount = ipars_l0
        sql = IPARS_QUERIES[1]
        with Virtualizer(text, mount) as virt:
            fast = list(virt.query_iter(sql, options=ON.replace(batch_rows=37)))
            slow = list(
                virt.query_iter(sql, options=OFF.replace(batch_rows=37))
            )
            assert len(fast) == len(slow)
            for a, b in zip(fast, slow):
                assert_identical_rows(a, b)

    def test_aggregate_identical(self, ipars_l0):
        _, text, mount = ipars_l0
        sql = (
            "SELECT REL, COUNT(*), AVG(SOIL) FROM IparsData "
            "WHERE SOIL > 0.3 GROUP BY REL"
        )
        with Virtualizer(text, mount) as virt:
            assert_tables_equal(
                virt.query(sql, options=ON), virt.query(sql, options=OFF)
            )

    def test_subsumption_refilter_identical(self, ipars_l0):
        _, text, mount = ipars_l0
        wide = "SELECT X, SOIL FROM IparsData WHERE TIME>2 AND TIME<10"
        narrow = "SELECT X, SOIL FROM IparsData WHERE TIME>3 AND TIME<9"
        results = {}
        for label, base in (("on", ON), ("off", OFF)):
            opts = base.replace(cache_mode="subsume")
            with Virtualizer(text, mount) as virt:
                virt.query(wide, options=opts)
                run = IOStats()
                results[label] = virt.query(narrow, stats=run, options=opts)
                assert run.subsumption_hits == 1
                if label == "on":
                    assert run.rows_vectorized == run.rows_refiltered > 0
        assert_identical_rows(results["on"], results["off"])


# ---------------------------------------------------------------------------
# Part 3: satellites — IN via np.isin, empty AND/OR, UDF fallback, wire
# ---------------------------------------------------------------------------


class TestInListRegression:
    def test_1000_value_in_list_single_pass_semantics(self):
        rng = np.random.default_rng(99)
        data = rng.integers(-2000, 2000, 4096).astype(np.int64)
        values = tuple(int(v) for v in rng.integers(-2000, 2000, 1000))
        node = InList(Column("A"), values)
        got = np.asarray(node.evaluate({"A": data}, DEFAULT_REGISTRY))
        expected = np.zeros(data.shape, dtype=bool)
        for v in set(values):
            expected |= data == v
        np.testing.assert_array_equal(got, expected)

    def test_mixed_type_values_match_elementwise_equality(self):
        data = np.array([1, 2, 3, 4, 2**62 + 1], dtype=np.int64)
        values = (2, 2.5, "x", 4.0)
        got = in_list_mask(data, values)
        expected = np.zeros(data.shape, dtype=bool)
        for v in values:
            expected |= data == v
        np.testing.assert_array_equal(got, expected)

    def test_nan_data_never_matches(self):
        data = np.array([np.nan, 1.0, np.nan, 2.0])
        got = in_list_mask(data, (1.0, np.nan))
        np.testing.assert_array_equal(
            got, np.array([False, True, False, False])
        )

    def test_string_column_ignores_numeric_values(self):
        data = np.array(["a", "b", "1"])
        np.testing.assert_array_equal(
            in_list_mask(data, (1, "b")), np.array([False, True, False])
        )
        assert not in_list_mask(data, (1, 2)).any()


class TestEmptyBoolTerms:
    def test_empty_and_raises_at_construction(self):
        with pytest.raises(QueryValidationError, match="AND"):
            And(())

    def test_empty_or_raises_at_construction(self):
        with pytest.raises(QueryValidationError, match="OR"):
            Or(())

    def test_single_term_still_fine(self):
        node = And((Comparison(">", Column("A"), Literal(1)),))
        assert np.asarray(
            node.evaluate({"A": np.array([0, 2])}, DEFAULT_REGISTRY)
        ).tolist() == [False, True]


def scalar_halfsum(a, b):
    # Deliberately un-vectorizable: Python-level branching per scalar.
    if a > b:
        return (a + b) / 2
    return b


def array_halfsum(a, b):
    return np.where(a > b, (a + b) / 2, b)


@pytest.fixture()
def udf_registry():
    reg = FunctionRegistry(parent=DEFAULT_REGISTRY)
    reg.register(
        "HALFSUM", scalar_halfsum, signature=FunctionSignature(2, 2)
    )
    reg.register(
        "VHALFSUM",
        array_halfsum,
        signature=FunctionSignature(2, 2),
        vectorized=True,
    )
    return reg


class TestScalarUDFFallback:
    def test_scalar_and_vectorized_udf_masks_identical(self, udf_registry):
        rng = np.random.default_rng(5)
        columns = {
            "A": rng.uniform(-5, 5, 500),
            "B": rng.uniform(-5, 5, 500),
        }
        scalar = CompiledPredicate(
            parse_where("HALFSUM(A, B) > 1"), udf_registry
        )
        vector = CompiledPredicate(
            parse_where("VHALFSUM(A, B) > 1"), udf_registry
        )
        np.testing.assert_array_equal(
            scalar.evaluate(columns, 500), vector.evaluate(columns, 500)
        )
        # The interpreted oracle passes whole arrays to UDFs, so the
        # genuinely scalar HALFSUM cannot run through it at all — the
        # np.vectorize fallback is compared against the interpreted
        # evaluation of the elementwise-equivalent VHALFSUM instead.
        interpreted = parse_where("VHALFSUM(A, B) > 1").evaluate(
            columns, udf_registry
        )
        np.testing.assert_array_equal(
            scalar.evaluate(columns, 500), np.asarray(interpreted)
        )

    def test_fallback_is_visible_on_the_kernel(self, udf_registry):
        scalar = CompiledPredicate(
            parse_where("HALFSUM(A, B) > 1"), udf_registry
        )
        vector = CompiledPredicate(
            parse_where("VHALFSUM(A, B) > 1"), udf_registry
        )
        assert scalar.scalar_udfs == ["HALFSUM"]
        assert vector.scalar_udfs == []

    def test_is_vectorized_walks_parent_chain(self, udf_registry):
        assert udf_registry.is_vectorized("VHALFSUM")
        assert not udf_registry.is_vectorized("HALFSUM")
        assert udf_registry.is_vectorized("SPEED")  # inherited
        assert not udf_registry.is_vectorized("NO_SUCH_FN")

    def test_rt309_flags_unvectorized_udf(self, udf_registry):
        descriptor = parse_descriptor(UDF_DESCRIPTOR)
        collector = analyze_query(
            descriptor,
            "SELECT A FROM UdfData WHERE HALFSUM(A, B) > 1 "
            "AND HALFSUM(B, A) > 0",
            functions=udf_registry,
        )
        assert [c for c in collector.codes() if c == "RT309"] == ["RT309"]

    def test_rt309_silent_for_vectorized_udf(self, udf_registry):
        descriptor = parse_descriptor(UDF_DESCRIPTOR)
        collector = analyze_query(
            descriptor,
            "SELECT A FROM UdfData WHERE VHALFSUM(A, B) > 1",
            functions=udf_registry,
        )
        assert "RT309" not in collector.codes()


UDF_DESCRIPTOR = """
[UDF]
A = int
B = float

[UdfData]
DatasetDescription = UDF
DIR[0] = n0

DATASET "UdfData" {
  DATATYPE { UDF }
  DATAINDEX { A }
  DATASPACE {
    LOOP A 1:4:1 { B }
  }
  DATA { DIR[0]/CHUNK$PART PART = 0:1:1 }
}
"""


class TestOptionsAndWire:
    def test_invalid_vectorize_value_rejected(self):
        with pytest.raises(ValueError, match="vectorize"):
            ExecOptions(vectorize="sometimes")

    def test_vectorize_crosses_the_wire(self):
        for value in ("on", "off"):
            encoded = encode_options(ExecOptions(vectorize=value))
            assert decode_options(encoded).vectorize == value

    def test_udf_speed_distance_are_vectorized(self):
        # The built-ins the fig7/fig8 workloads call must take the fast
        # path, or the headline benchmark silently degrades.
        assert DEFAULT_REGISTRY.is_vectorized("SPEED")
        assert DEFAULT_REGISTRY.is_vectorized("DISTANCE")
